// Package recovery implements ARIES restart recovery (paper §1.2) and
// page-oriented media recovery (§5) for ariesim.
//
// Restart makes three passes over the log:
//
//   - analysis: from the last checkpoint to the end of the log, rebuilding
//     the transaction table and dirty page table;
//   - redo: from the minimum recLSN, repeating history — every logged page
//     action (including CLRs, including in-flight transactions' updates)
//     whose effect is missing from its page (page_LSN < record LSN) is
//     reapplied, strictly page-oriented;
//   - undo: the losers' updates are rolled back in a single global
//     reverse-LSN sweep, writing CLRs; this global order is what
//     guarantees that an incomplete SMO is undone before any logical undo
//     needs to traverse its tree (§3 "Restart Undo Considerations").
//
// Locks are reacquired only for in-doubt (prepared) transactions, from
// the lock lists carried in their prepare records.
package recovery

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ariesim/internal/buffer"
	"ariesim/internal/core"
	"ariesim/internal/data"
	"ariesim/internal/latch"
	"ariesim/internal/lock"
	"ariesim/internal/space"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// routeRedo dispatches one record's redo to its resource manager.
func routeRedo(p *storage.Page, rec *wal.Record) error {
	switch {
	case rec.Op >= wal.OpIdxInsertKey && rec.Op <= wal.OpIdxUnfreePage:
		return core.ApplyRedo(p, rec)
	case rec.Op == wal.OpFSMAlloc || rec.Op == wal.OpFSMFree:
		return space.ApplyRedo(p, rec)
	case rec.Op >= wal.OpDataFormat && rec.Op <= wal.OpDataFree:
		return data.ApplyRedo(p, rec)
	default:
		return fmt.Errorf("recovery: no resource manager for op %s", rec.Op)
	}
}

// Report summarizes a restart for tests and the bench harness.
type Report struct {
	AnalyzedFrom  wal.LSN
	RedoFrom      wal.LSN
	RecordsSeen   int
	RedosApplied  int
	RedosSkipped  int
	LosersUndone  int
	InDoubt       []wal.TxID
	LocksRestored int

	// Parallel-redo observability.
	RedoWorkers        int // effective worker count (after clamping to DPT size)
	RedoRecordsScanned int // records examined across all redo workers
	PagesPrefetched    int // pages pulled in by the DPT-driven prefetcher

	// Per-pass wall clocks.
	AnalysisWall time.Duration
	RedoWall     time.Duration
	UndoWall     time.Duration

	// Online-restart observability (zero for offline restarts). OpenWall is
	// the time from restart start to the engine opening for business —
	// analysis plus lock reinstatement plus the pre-open stabilization undo.
	// The remaining fields are written by the background phases and are safe
	// to read only after Online.Wait returns.
	Online           bool
	OpenWall         time.Duration
	PagesOnDemand    int // DPT pages recovered at fix time by foreground callers
	PagesDrained     int // DPT pages recovered by the background drain
	LosersStabilized int // losers undone before open (structural/delete undo)
	LosersBackground int // insert-only losers undone after open, under reinstated locks
}

// ErrRestartInterrupted reports that a restart stopped early because its
// undo-step budget ran out — the crash-during-restart case. The engine is
// NOT open: volatile state must be discarded and restart run again. ARIES
// guarantees the rerun is correct because the CLRs written so far make the
// partial undo repeatable without re-undoing compensated work.
var ErrRestartInterrupted = errors.New("recovery: restart interrupted mid-undo")

// DefaultRedoPrefetch is the prefetch read-ahead depth (pages in flight
// beyond the apply cursor) used when parallel redo is on and the caller
// did not choose one.
const DefaultRedoPrefetch = 32

// redoPrefetchBatch is how many page reads one prefetch call issues
// concurrently; small enough not to flood a shard with loading frames,
// large enough to keep a costed device queue busy.
const redoPrefetchBatch = 8

// RestartOpts tunes a restart run.
type RestartOpts struct {
	// MaxUndoSteps, when positive, crashes the restart after that many undo
	// steps (each step writes one CLR or closes one loser) by returning
	// ErrRestartInterrupted. Zero or negative means run to completion.
	// Used by the crash-point sweep to exercise repeated restarts.
	MaxUndoSteps int

	// RedoWorkers is the redo-pass parallelism. Zero or one runs the
	// classic single-threaded pass (the measured baseline); N > 1
	// partitions the dirty page table across N workers by page id. The
	// effective count is clamped to the DPT size.
	RedoWorkers int

	// RedoPrefetch is the prefetcher's read-ahead depth in pages. Zero
	// picks DefaultRedoPrefetch when RedoWorkers > 1 and disables
	// prefetching for the serial baseline; negative disables it outright.
	RedoPrefetch int
}

// Restart runs the three recovery passes. The caller supplies the freshly
// constructed (post-crash) managers: an empty lock manager, a transaction
// manager with its undoer wired to the reopened index/record managers, and
// a buffer pool over the surviving disk. stats may be nil.
func Restart(log *wal.Log, pool *buffer.Pool, tm *txn.Manager, locks *lock.Manager, stats *trace.Stats) (*Report, error) {
	return RestartWith(log, pool, tm, locks, stats, RestartOpts{})
}

// RestartWith is Restart with options; see RestartOpts.
func RestartWith(log *wal.Log, pool *buffer.Pool, tm *txn.Manager, locks *lock.Manager, stats *trace.Stats, opts RestartOpts) (*Report, error) {
	rep := &Report{}
	t := time.Now()
	txTable, dpt, maxTx, err := analyze(log, rep)
	if err != nil {
		return nil, err
	}
	rep.AnalysisWall = time.Since(t)
	tm.SetNextID(maxTx + 1)
	t = time.Now()
	if err := redo(log, pool, dpt, rep, stats, opts); err != nil {
		return nil, err
	}
	rep.RedoWall = time.Since(t)
	if err := reacquireLocks(log, tm, txTable, rep); err != nil {
		return nil, err
	}
	t = time.Now()
	if err := undoLosers(tm, txTable, rep, opts.MaxUndoSteps); err != nil {
		return rep, err
	}
	rep.UndoWall = time.Since(t)
	// Post-restart checkpoint bounds the next restart's analysis pass.
	tm.Checkpoint(pool)
	return rep, nil
}

// analyze rebuilds the transaction table and dirty page table.
func analyze(log *wal.Log, rep *Report) (map[wal.TxID]*wal.TxTableEntry, map[storage.PageID]wal.LSN, wal.TxID, error) {
	txTable := map[wal.TxID]*wal.TxTableEntry{}
	dpt := map[storage.PageID]wal.LSN{}
	var maxTx wal.TxID

	start := wal.NilLSN + 1
	if master := log.Master(); master != wal.NilLSN {
		// Prime the tables from the checkpoint's end record.
		var primed bool
		log.Scan(master, func(r *wal.Record) bool {
			if r.Type == wal.RecEndCkpt {
				ckpt, err := wal.DecodeCheckpointData(r.Payload)
				if err != nil {
					// The end-ckpt record survived but its payload does not
					// decode (torn or corrupt on the media). Starting at the
					// master LSN with EMPTY tables would silently drop every
					// pre-checkpoint loser and dirty page — committed work
					// lost, in-flight work half-applied. Treat the checkpoint
					// as unusable and fall back to full-log analysis, which
					// rebuilds both tables from scratch.
					return false
				}
				for i := range ckpt.Txs {
					e := ckpt.Txs[i]
					txTable[e.TxID] = &e
					if e.TxID > maxTx {
						maxTx = e.TxID
					}
				}
				for _, d := range ckpt.DPT {
					dpt[d.Page] = d.RecLSN
				}
				primed = true
				return false
			}
			return true
		})
		if primed {
			start = master
		}
		// Not primed: the crash tore the fuzzy checkpoint apart — the
		// begin-ckpt the master record points at is stable but its
		// end-ckpt (carrying the tx table and DPT) was lost with the
		// unforced tail or survived with an undecodable payload. The
		// checkpoint is unusable; analyze from the start of the log as if
		// it never happened. (SetMaster runs only
		// after the end record is forced, so this state needs the stable
		// mark itself to rewind — a torn log tail or a crash-point
		// truncation landing between the two checkpoint records.)
	}
	rep.AnalyzedFrom = start

	log.Scan(start, func(r *wal.Record) bool {
		rep.RecordsSeen++
		if r.TxID != 0 {
			if r.TxID > maxTx {
				maxTx = r.TxID
			}
			e := txTable[r.TxID]
			if e == nil {
				e = &wal.TxTableEntry{TxID: r.TxID, State: wal.TxActive}
				txTable[r.TxID] = e
			}
			e.LastLSN = r.LSN
			switch {
			case r.IsCLR():
				e.UndoNxtLSN = r.UndoNxtLSN
			case r.Type == wal.RecUpdate && r.RedoOnly:
				// Never undone; leaves the chain untouched (mirrors txn.Log).
			default:
				e.UndoNxtLSN = r.LSN
			}
			switch r.Type {
			case wal.RecCommit:
				e.State = wal.TxCommitted
			case wal.RecAbort:
				e.State = wal.TxRollingBack
			case wal.RecPrepare:
				e.State = wal.TxPrepared
			case wal.RecEnd:
				delete(txTable, r.TxID)
			}
		}
		if r.Redoable() {
			if _, ok := dpt[r.Page]; !ok {
				dpt[r.Page] = r.LSN
			}
		}
		return true
	})
	// Committed-but-not-ended transactions need only their end record.
	for id, e := range txTable {
		if e.State == wal.TxCommitted {
			delete(txTable, id)
		}
	}
	return txTable, dpt, maxTx, nil
}

// redo repeats history from the minimum recLSN.
//
// The pass is strictly page-oriented: a record's redo touches exactly one
// page, and the only ordering ARIES requires is per-page LSN order (§1.2).
// Partitioning the dirty page table by page id therefore needs zero
// cross-worker synchronization — each worker replays only its own pages'
// records, in log order, and no two workers ever fix the same page. The
// partition function is the pool's Fibonacci shard hash, so a worker's
// pages also spread across buffer shards. One log snapshot (SnapshotFrom)
// is shared read-only by every worker.
func redo(log *wal.Log, pool *buffer.Pool, dpt map[storage.PageID]wal.LSN, rep *Report, stats *trace.Stats, opts RestartOpts) error {
	rep.RedoWorkers = 1
	if len(dpt) == 0 {
		// Nothing to redo. Report the analysis start rather than a bogus
		// zero LSN so "redo began at" is never before "analysis began at".
		rep.RedoFrom = rep.AnalyzedFrom
		return nil
	}
	redoFrom := wal.LSN(^uint64(0))
	for _, l := range dpt {
		if l < redoFrom {
			redoFrom = l
		}
	}
	rep.RedoFrom = redoFrom
	recs := log.SnapshotFrom(redoFrom)

	workers := opts.RedoWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > len(dpt) {
		workers = len(dpt)
	}
	rep.RedoWorkers = workers

	prefetch := opts.RedoPrefetch
	switch {
	case prefetch < 0:
		prefetch = 0
	case prefetch == 0 && workers > 1:
		prefetch = DefaultRedoPrefetch
	case workers == 1:
		prefetch = 0 // the serial baseline stays honestly serial
	}

	// Partition the DPT and, when prefetching, compute each worker's pages
	// in first-redo order — the order its apply cursor will demand them.
	parts := make([]map[storage.PageID]wal.LSN, workers)
	for i := range parts {
		parts[i] = make(map[storage.PageID]wal.LSN)
	}
	for pid, rec := range dpt {
		parts[int(buffer.ShardHash(pid)%uint64(workers))][pid] = rec
	}
	orders := make([][]storage.PageID, workers)
	if prefetch > 0 {
		seen := make(map[storage.PageID]bool, len(dpt))
		for _, r := range recs {
			if !r.Redoable() || seen[r.Page] {
				continue
			}
			if rec, ok := dpt[r.Page]; !ok || r.LSN < rec {
				continue
			}
			seen[r.Page] = true
			w := int(buffer.ShardHash(r.Page) % uint64(workers))
			orders[w] = append(orders[w], r.Page)
		}
	}

	var abort atomic.Bool
	results := make([]redoResult, workers)
	if workers == 1 {
		results[0] = redoPartition(pool, recs, parts[0], orders[0], prefetch, stats, &abort)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				results[w] = redoPartition(pool, recs, parts[w], orders[w], prefetch, stats, &abort)
			}(w)
		}
		wg.Wait()
	}
	var redoErr error
	for _, res := range results {
		rep.RedosApplied += res.applied
		rep.RedosSkipped += res.skipped
		rep.RedoRecordsScanned += res.scanned
		rep.PagesPrefetched += res.prefetched
		if res.err != nil && redoErr == nil {
			redoErr = res.err
		}
	}
	if stats != nil {
		stats.RedoRecordsScanned.Add(uint64(rep.RedoRecordsScanned))
	}
	return redoErr
}

// redoResult is one redo worker's tally.
type redoResult struct {
	applied    int
	skipped    int
	scanned    int
	prefetched int
	err        error
}

// redoPartition replays, in log order, every redoable record belonging to
// the pages in part. It is the classic serial redo loop body; parallelism
// comes entirely from running several partitions at once over the shared
// record snapshot. A prefetcher goroutine (when enabled) pulls the
// partition's pages into the pool ahead of the apply cursor so miss reads
// overlap with apply work.
func redoPartition(pool *buffer.Pool, recs []*wal.Record, part map[storage.PageID]wal.LSN, order []storage.PageID, prefetch int, stats *trace.Stats, abort *atomic.Bool) (res redoResult) {
	if len(part) == 0 {
		return res
	}
	// cursor counts distinct pages the apply loop has reached; the
	// prefetcher throttles itself against it.
	var cursor atomic.Int64
	if prefetch > 0 && len(order) > 0 {
		stop := make(chan struct{})
		done := make(chan int, 1)
		go prefetchAhead(pool, order, &cursor, prefetch, stop, done)
		defer func() {
			close(stop)
			res.prefetched = <-done
		}()
	}
	touched := make(map[storage.PageID]bool, len(part))
	for _, r := range recs {
		if abort.Load() {
			return res
		}
		res.scanned++
		if !r.Redoable() {
			continue
		}
		rec, ok := part[r.Page]
		if !ok || r.LSN < rec {
			continue
		}
		if !touched[r.Page] {
			touched[r.Page] = true
			cursor.Add(1)
		}
		f, err := pool.Fix(r.Page)
		if err != nil {
			res.err = err
			abort.Store(true)
			return res
		}
		f.Latch.Acquire(latch.X)
		if f.Page.LSN() < uint64(r.LSN) {
			if err := routeRedo(f.Page, r); err != nil {
				f.Latch.Release(latch.X)
				pool.Unfix(f)
				res.err = fmt.Errorf("recovery: redo of %s: %w", r, err)
				abort.Store(true)
				return res
			}
			f.Page.SetLSN(uint64(r.LSN))
			pool.MarkDirty(f, r.LSN)
			res.applied++
			if stats != nil {
				stats.RedoApplied.Add(1)
			}
		} else {
			res.skipped++
			if stats != nil {
				stats.RedoSkipped.Add(1)
			}
		}
		f.Latch.Release(latch.X)
		pool.Unfix(f)
	}
	return res
}

// prefetchAhead batches the partition's pages into the pool in first-use
// order, staying at most depth pages beyond the apply cursor so a huge DPT
// cannot flood (or thrash) the pool. Throttling is a bounded sleep-poll
// rather than a handshake: the apply loop never blocks on the prefetcher,
// and a closed stop channel ends the read-ahead immediately.
func prefetchAhead(pool *buffer.Pool, order []storage.PageID, cursor *atomic.Int64, depth int, stop <-chan struct{}, done chan<- int) {
	total := 0
	for i := 0; i < len(order); {
		for int64(i)-cursor.Load() >= int64(depth) {
			select {
			case <-stop:
				done <- total
				return
			default:
			}
			time.Sleep(20 * time.Microsecond)
		}
		end := i + redoPrefetchBatch
		if end > len(order) {
			end = len(order)
		}
		total += pool.Prefetch(order[i:end])
		i = end
		select {
		case <-stop:
			done <- total
			return
		default:
		}
	}
	done <- total
}

// reacquireLocks restores the locks of in-doubt transactions from their
// prepare records, so new transactions cannot see their uncommitted data.
func reacquireLocks(log *wal.Log, tm *txn.Manager, txTable map[wal.TxID]*wal.TxTableEntry, rep *Report) error {
	for _, e := range txTable {
		if e.State != wal.TxPrepared {
			continue
		}
		rep.InDoubt = append(rep.InDoubt, e.TxID)
		// Adopt the in-doubt transaction so the coordinator's eventual
		// decision (commit or rollback) can be executed against it.
		tm.AdoptLoser(*e)
		// Find the prepare record by walking the PrevLSN chain.
		lsn := e.LastLSN
		for lsn != wal.NilLSN {
			r, err := log.Read(lsn)
			if err != nil {
				return err
			}
			if r.Type == wal.RecPrepare {
				specs, err := wal.DecodeLocks(r.Payload)
				if err != nil {
					return err
				}
				for _, s := range specs {
					name := lock.Name{Space: lock.Space(s.Space), A: s.A, B: s.B}
					if err := tm.Locks().Request(lock.Owner(e.TxID), name, lock.Mode(s.Mode), lock.Commit, false); err != nil {
						return fmt.Errorf("recovery: reacquire %v for tx %d: %w", name, e.TxID, err)
					}
					rep.LocksRestored++
				}
				break
			}
			lsn = r.PrevLSN
		}
	}
	sort.Slice(rep.InDoubt, func(i, j int) bool { return rep.InDoubt[i] < rep.InDoubt[j] })
	return nil
}

// undoLosers rolls back every in-flight transaction in one global
// reverse-LSN sweep, exactly as the ARIES undo pass prescribes. A positive
// maxSteps budget interrupts the pass after that many steps (simulating a
// crash during restart); the CLRs already written keep the rerun correct.
func undoLosers(tm *txn.Manager, txTable map[wal.TxID]*wal.TxTableEntry, rep *Report, maxSteps int) error {
	losers := map[wal.TxID]*txn.Tx{}
	for _, e := range txTable {
		if e.State == wal.TxActive || e.State == wal.TxRollingBack {
			losers[e.TxID] = tm.AdoptLoser(*e)
		}
	}
	rep.LosersUndone = len(losers)
	steps := 0
	for len(losers) > 0 {
		// Pick the loser with the maximum UndoNxtLSN.
		var victim *txn.Tx
		for _, t := range losers {
			if t.UndoNxtLSN() == wal.NilLSN {
				t.EndLoser()
				delete(losers, t.ID)
				continue
			}
			if victim == nil || t.UndoNxtLSN() > victim.UndoNxtLSN() {
				victim = t
			}
		}
		if victim == nil {
			break
		}
		if maxSteps > 0 && steps >= maxSteps {
			return ErrRestartInterrupted
		}
		if err := victim.UndoStep(); err != nil {
			return err
		}
		steps++
		if victim.UndoNxtLSN() == wal.NilLSN {
			victim.EndLoser()
			delete(losers, victim.ID)
		}
	}
	return nil
}

// ImageCopy is a fuzzy archive dump: a point-in-time copy of the disk
// pages plus the stable-log position at dump time. It is taken without
// quiescing anything (the log makes the copy action-consistent).
type ImageCopy struct {
	Pages   map[storage.PageID][]byte
	DumpLSN wal.LSN
}

// TakeImageCopy snapshots the disk for media recovery. Pages whose stored
// checksum no longer matches (a torn write or bit flip that happened to be
// on disk at dump time) are left out of the image: including them would
// poison recovery, because their mixed content can carry a high page_LSN
// that makes roll-forward skip the very records needed to fix them. An
// omitted page is simply rebuilt from scratch by replaying its full log
// history.
func TakeImageCopy(disk *storage.Disk, log *wal.Log) *ImageCopy {
	pages := disk.Snapshot()
	for id, b := range pages {
		if !storage.PageFromBytes(b).VerifyChecksum() {
			delete(pages, id)
		}
	}
	return &ImageCopy{Pages: pages, DumpLSN: log.StableLSN()}
}

// RecoverPage rebuilds a single damaged page from the image copy plus one
// forward pass of the log — the paper's §5 page-oriented media recovery:
// no tree traversal, no other pages, index pages handled exactly like data
// pages. For multiple damaged pages use RecoverPages, which shares one
// scan instead of paying one per page.
func RecoverPage(disk *storage.Disk, log *wal.Log, img *ImageCopy, pid storage.PageID) error {
	_, err := RecoverPages(disk, log, img, []storage.PageID{pid})
	return err
}

// RecoverPages rebuilds every page in pids from the image copy plus ONE
// forward pass of the log, applying each record to the (at most one)
// damaged page it names. Rebuilding N pages was previously N full log
// scans — O(pages × records); batching makes a multi-page media failure
// (a dying device corrupting a whole region) cost the same single scan as
// one page. Only records on the stable log are applied: writing a page
// whose page_LSN exceeded the stable LSN would violate the WAL protocol
// (the disk may never be ahead of the log), and is also unnecessary —
// every disk version the page ever had was forced-covered before it was
// written. Returns the number of log records examined (tests assert the
// single-scan bound with it). Pages are written back only after the whole
// scan succeeds, in pid order.
func RecoverPages(disk *storage.Disk, log *wal.Log, img *ImageCopy, pids []storage.PageID) (int, error) {
	if len(pids) == 0 {
		return 0, nil
	}
	pages := make(map[storage.PageID]*storage.Page, len(pids))
	for _, pid := range pids {
		if _, ok := pages[pid]; ok {
			continue
		}
		page := storage.NewPage(disk.PageSize())
		if b, ok := img.Pages[pid]; ok {
			copy(page.Bytes(), b)
		}
		pages[pid] = page
	}
	stable := log.StableLSN()
	scanned := 0
	var applyErr error
	log.Scan(wal.NilLSN+1, func(r *wal.Record) bool {
		if r.LSN > stable {
			return false
		}
		scanned++
		if !r.Redoable() {
			return true
		}
		page, ok := pages[r.Page]
		if !ok || page.LSN() >= uint64(r.LSN) {
			return true
		}
		if err := routeRedo(page, r); err != nil {
			applyErr = fmt.Errorf("recovery: media redo of %s: %w", r, err)
			return false
		}
		page.SetLSN(uint64(r.LSN))
		return true
	})
	if applyErr != nil {
		return scanned, applyErr
	}
	ids := make([]storage.PageID, 0, len(pages))
	for pid := range pages {
		ids = append(ids, pid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, pid := range ids {
		if err := disk.Write(pid, pages[pid].Bytes()); err != nil {
			return scanned, err
		}
	}
	return scanned, nil
}

// Boundaries returns the LSN of every log record strictly after `after`:
// the full set of crash points a sweep must exercise. Truncating the log
// at boundary L simulates a crash whose last successful force covered
// exactly the records up to and including L.
func Boundaries(log *wal.Log, after wal.LSN) []wal.LSN {
	var out []wal.LSN
	log.Scan(after+1, func(r *wal.Record) bool {
		if r.LSN > after {
			out = append(out, r.LSN)
		}
		return true
	})
	return out
}
