package recovery

import (
	"testing"

	"ariesim/internal/core"
	"ariesim/internal/storage"
	"ariesim/internal/wal"
)

// restartWith is env.restart with explicit options (parallel redo tests).
func (e *env) restartWith(opts RestartOpts) *Report {
	e.t.Helper()
	e.buildVolatile()
	e.ix = e.im.OpenIndex(e.cfg, e.root)
	rep, err := RestartWith(e.log, e.pool, e.tm, e.locks, e.stats, opts)
	if err != nil {
		e.t.Fatalf("restart: %v", err)
	}
	return rep
}

// TestAnalyzeCorruptEndCkptFallsBack is the regression test for the
// data-loss bug where analyze primed itself from an end-ckpt record whose
// payload failed to decode: it would start at the master LSN with an EMPTY
// tx table and DPT, silently dropping every pre-checkpoint loser and dirty
// page. The fix falls back to full-log analysis.
func TestAnalyzeCorruptEndCkptFallsBack(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})

	// Committed work that lives only in dirty buffer pages at checkpoint
	// time: its recovery depends entirely on the checkpoint's DPT (or, on
	// a corrupt checkpoint, on analyzing the full log).
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 120)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tm.Checkpoint(e.pool)
	master := e.log.Master()
	if master == wal.NilLSN {
		t.Fatal("checkpoint did not set the master record")
	}

	// Post-checkpoint work plus an in-flight loser, so the corrupt-ckpt
	// restart has both redo and undo to get right.
	tx2 := e.tm.Begin()
	e.insertRange(tx2, 120, 160)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	loser := e.tm.Begin()
	e.insertRange(loser, 160, 170)
	e.log.ForceAll()
	e.crash()

	// Damage the end-ckpt payload in place: the record survived the crash
	// but its tx-table/DPT snapshot does not decode (torn on the media).
	var damaged bool
	for _, r := range e.log.Records(master) {
		if r.Type == wal.RecEndCkpt {
			r.Payload = r.Payload[:1]
			damaged = true
			break
		}
	}
	if !damaged {
		t.Fatal("end-ckpt record not found")
	}

	rep := e.restart()
	if rep.AnalyzedFrom != wal.NilLSN+1 {
		t.Fatalf("analysis started at LSN %d; a corrupt end-ckpt must force full-log analysis (LSN %d)",
			rep.AnalyzedFrom, wal.NilLSN+1)
	}
	want := map[int]bool{}
	for i := 0; i < 160; i++ {
		want[i] = true
	}
	for i := 160; i < 170; i++ {
		want[i] = false // the loser must be undone, not dropped
	}
	e.expectKeySet(want)
}

// TestReportRedoFromEmptyDPT covers the reporting bug where a restart with
// nothing to redo left Report.RedoFrom at the zero LSN, claiming redo
// started before the log began.
func TestReportRedoFromEmptyDPT(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 50)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Everything flushed before the checkpoint: the DPT is empty, and no
	// redoable record follows the checkpoint.
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.tm.Checkpoint(e.pool)
	e.log.ForceAll()
	e.crash()

	rep := e.restart()
	if rep.RedosApplied != 0 {
		t.Fatalf("redo applied %d records; everything was on disk", rep.RedosApplied)
	}
	if rep.RedoFrom == wal.NilLSN {
		t.Fatal("empty-DPT restart reported RedoFrom at the zero LSN")
	}
	if rep.RedoFrom != rep.AnalyzedFrom {
		t.Fatalf("RedoFrom = %d, want the analyzed-from LSN %d", rep.RedoFrom, rep.AnalyzedFrom)
	}
	want := map[int]bool{}
	for i := 0; i < 50; i++ {
		want[i] = true
	}
	e.expectKeySet(want)
}

// TestRecoverPagesSingleScan asserts the batched media recovery rebuilds
// many damaged pages in ONE forward log pass — the scanned-record count
// is bounded by the log length, not pages × records.
func TestRecoverPagesSingleScan(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 300) // enough keys to split across many pages
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.log.ForceAll()

	ids := e.disk.PageIDs()
	if len(ids) < 3 {
		t.Fatalf("workload touched only %d pages; need >= 3", len(ids))
	}
	victims := []storage.PageID{ids[0], ids[len(ids)/2], ids[len(ids)-1]}
	for _, pid := range victims {
		e.disk.Corrupt(pid)
	}

	img := &ImageCopy{Pages: map[storage.PageID][]byte{}}
	scanned, err := RecoverPages(e.disk, e.log, img, victims)
	if err != nil {
		t.Fatal(err)
	}
	if n := e.log.NumRecords(); scanned > n {
		t.Fatalf("batched recovery of %d pages examined %d records; one scan of the %d-record log suffices",
			len(victims), scanned, n)
	}

	// The rebuilt pages must serve the full tree again.
	e.buildVolatile()
	e.ix = e.im.OpenIndex(e.cfg, e.root)
	want := map[int]bool{}
	for i := 0; i < 300; i++ {
		want[i] = true
	}
	e.expectKeySet(want)
}

// TestParallelRedoMatchesSerial runs the same crash through the serial
// baseline and a parallel restart and expects the same recovered key set
// and the same applied/skipped totals.
func TestParallelRedoMatchesSerial(t *testing.T) {
	build := func() *env {
		e := newEnv(t, core.Config{ID: 1})
		tx := e.tm.Begin()
		e.insertRange(tx, 0, 200)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		tx2 := e.tm.Begin()
		e.deleteRange(tx2, 40, 90)
		if err := tx2.Commit(); err != nil {
			t.Fatal(err)
		}
		e.tm.Checkpoint(e.pool)
		tx3 := e.tm.Begin()
		e.insertRange(tx3, 200, 260)
		if err := tx3.Commit(); err != nil {
			t.Fatal(err)
		}
		loser := e.tm.Begin()
		e.insertRange(loser, 260, 270)
		e.log.ForceAll()
		e.crash()
		return e
	}
	want := map[int]bool{}
	for i := 0; i < 260; i++ {
		want[i] = i < 40 || i >= 90
	}
	for i := 260; i < 270; i++ {
		want[i] = false
	}

	serial := build().restartWith(RestartOpts{RedoWorkers: 1})
	for _, workers := range []int{2, 8} {
		e := build()
		rep := e.restartWith(RestartOpts{RedoWorkers: workers})
		if rep.RedoWorkers < 2 {
			t.Fatalf("requested %d workers, effective %d", workers, rep.RedoWorkers)
		}
		if rep.RedosApplied != serial.RedosApplied || rep.RedosSkipped != serial.RedosSkipped {
			t.Fatalf("%d workers applied/skipped %d/%d, serial %d/%d",
				workers, rep.RedosApplied, rep.RedosSkipped, serial.RedosApplied, serial.RedosSkipped)
		}
		e.expectKeySet(want)
	}
}
