package recovery

import (
	"testing"

	"ariesim/internal/core"
	"ariesim/internal/wal"
)

// cutAfter truncates the stable log right after the first record of the
// given op logged by tx, simulating a crash at that exact point.
func (e *env) cutAfter(t *testing.T, tx wal.TxID, op wal.OpCode) bool {
	t.Helper()
	for _, r := range e.log.Records(1) {
		if r.TxID == tx && r.Op == op {
			e.log.TruncateTo(r.LSN)
			e.pool.Crash()
			return true
		}
	}
	return false
}

// expectCLRs asserts that restart wrote at least one CLR with each op.
func (e *env) expectCLRs(t *testing.T, ops ...wal.OpCode) {
	t.Helper()
	seen := map[wal.OpCode]bool{}
	for _, r := range e.log.Records(1) {
		if r.Type == wal.RecCLR {
			seen[r.Op] = true
		}
	}
	for _, op := range ops {
		if !seen[op] {
			t.Errorf("no CLR with op %s written during restart", op)
		}
	}
}

// TestCrashAfterSplitParentPost cuts the log right after the separator was
// posted to the parent but before the dummy CLR: restart must unwind the
// whole split page-oriented (unsplit-parent, unsplit-left, free the new
// page, free its FSM bit).
func TestCrashAfterSplitParentPost(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	// A committed two-level tree, so the loser's split posts a separator
	// to an existing parent instead of splitting the root.
	setup := e.tm.Begin()
	e.insertRange(setup, 0, 150)
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	if h, _ := e.ix.Height(); h < 2 {
		t.Fatal("setup tree too short")
	}
	tx := e.tm.Begin()
	i := 150
	hasParentPost := func() bool {
		for _, r := range e.log.Records(1) {
			if r.TxID == tx.ID && r.Op == wal.OpIdxSplitParent {
				return true
			}
		}
		return false
	}
	for !hasParentPost() {
		if err := e.ix.Insert(tx, key(i)); err != nil {
			t.Fatal(err)
		}
		i++
		if i > 2000 {
			t.Fatal("no parent-posting split")
		}
	}
	if !e.cutAfter(t, tx.ID, wal.OpIdxSplitParent) {
		t.Fatal("cut point vanished")
	}
	e.restart()
	e.expectCLRs(t, wal.OpIdxUnsplitParent, wal.OpIdxUnsplitLeft, wal.OpFSMFree)
	want := map[int]bool{}
	for j := 0; j < 150; j++ {
		want[j] = true
	}
	for j := 150; j < i; j++ {
		want[j] = false
	}
	e.expectKeySet(want)
}

// TestCrashDuringRootSplit cuts the log right after the root's physical
// replacement: restart undoes it via the before-image CLR and frees the
// two fresh children.
func TestCrashDuringRootSplit(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	i := 0
	for e.stats.PageSplits.Load() == 0 {
		if err := e.ix.Insert(tx, key(i)); err != nil {
			t.Fatal(err)
		}
		i++
		if i > 500 {
			t.Fatal("no split")
		}
	}
	// The first split of a fresh index is a root split.
	if !e.cutAfter(t, tx.ID, wal.OpIdxReplacePage) {
		t.Fatal("no root replace record found")
	}
	e.restart()
	e.expectCLRs(t, wal.OpIdxReplacePage, wal.OpIdxFreePage, wal.OpFSMFree)
	e.expectKeySet(map[int]bool{}) // the whole tx is a loser
	// The root is a leaf again, and usable.
	if h, err := e.ix.Height(); err != nil || h != 1 {
		t.Fatalf("height after unwound root split = %d, %v", h, err)
	}
	redo := e.tm.Begin()
	if err := e.ix.Insert(redo, key(999)); err != nil {
		t.Fatal(err)
	}
	if err := redo.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashDuringPageDeleteChainFix cuts the log after the sibling chain
// was rewired but before the parent entry was removed: restart restores
// the chain and the deleted key page-oriented.
func TestCrashDuringPageDeleteChainFix(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	setup := e.tm.Begin()
	e.insertRange(setup, 0, 120)
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := e.tm.Begin()
	i := 0
	for e.stats.PageDeletes.Load() == 0 && i < 120 {
		if err := e.ix.Delete(tx, key(i)); err != nil {
			t.Fatal(err)
		}
		i++
	}
	if e.stats.PageDeletes.Load() == 0 {
		t.Fatal("no page delete")
	}
	if !e.cutAfter(t, tx.ID, wal.OpIdxChainFix) {
		t.Fatal("no chain-fix record found")
	}
	e.restart()
	// The chain fix was compensated with its swapped-payload twin.
	clrChainFixes := 0
	for _, r := range e.log.Records(1) {
		if r.Type == wal.RecCLR && r.Op == wal.OpIdxChainFix {
			clrChainFixes++
		}
	}
	if clrChainFixes == 0 {
		t.Fatal("chain fix not compensated")
	}
	// Everything the loser deleted is back.
	want := map[int]bool{}
	for j := 0; j < 120; j++ {
		want[j] = true
	}
	e.expectKeySet(want)
}

// TestCrashDuringRootCollapse drives the tree up and back down so the root
// collapse (ReplacePage + child free) appears in the log, then cuts inside
// it.
func TestCrashDuringRootCollapse(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	setup := e.tm.Begin()
	e.insertRange(setup, 0, 200)
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	if h, _ := e.ix.Height(); h < 2 {
		t.Fatal("tree too short")
	}
	// Drain almost everything in one loser transaction: collapses occur.
	tx := e.tm.Begin()
	e.deleteRange(tx, 0, 199)
	// Find a ReplacePage logged by the DRAIN (a collapse, not a split).
	if !e.cutAfter(t, tx.ID, wal.OpIdxReplacePage) {
		t.Skip("drain caused no root collapse on this geometry")
	}
	e.restart()
	// All 200 keys are back (the whole drain was a loser), and the tree
	// is structurally sound despite the interrupted collapse.
	want := map[int]bool{}
	for j := 0; j < 200; j++ {
		want[j] = true
	}
	e.expectKeySet(want)
}

// TestCrashAtEveryRecordOfOneSplit sweeps every single cut point through
// one split SMO — the finest-grained structural-consistency check.
func TestCrashAtEveryRecordOfOneSplit(t *testing.T) {
	build := func() (*env, wal.LSN, wal.LSN, int) {
		e := newEnv(t, core.Config{ID: 1})
		setup := e.tm.Begin()
		e.insertRange(setup, 0, 20)
		if err := setup.Commit(); err != nil {
			t.Fatal(err)
		}
		tx := e.tm.Begin()
		splitStart := wal.LSN(0)
		i := 20
		for e.stats.PageSplits.Load() == 0 {
			if err := e.ix.Insert(tx, key(i)); err != nil {
				t.Fatal(err)
			}
			i++
			if i > 500 {
				t.Fatal("no split")
			}
		}
		// Locate the SMO region: first FSMAlloc by tx to the dummy CLR.
		var end wal.LSN
		for _, r := range e.log.Records(1) {
			if r.TxID == tx.ID && r.Op == wal.OpFSMAlloc && splitStart == 0 {
				splitStart = r.LSN
			}
			if r.TxID == tx.ID && r.Type == wal.RecDummyCLR {
				end = r.LSN
			}
		}
		if splitStart == 0 || end == 0 {
			t.Fatal("SMO region not found")
		}
		return e, splitStart, end, i
	}
	probe, start, end, _ := build()
	var cuts []wal.LSN
	for _, r := range probe.log.Records(start) {
		if r.LSN > end {
			break
		}
		cuts = append(cuts, r.LSN)
	}
	if len(cuts) < 4 {
		t.Fatalf("only %d records in the SMO region", len(cuts))
	}
	for _, cut := range cuts {
		cut := cut
		e, _, _, inserted := build()
		e.log.TruncateTo(cut)
		e.pool.Crash()
		e.restart()
		want := map[int]bool{}
		for j := 0; j < 20; j++ {
			want[j] = true
		}
		for j := 20; j < inserted; j++ {
			want[j] = false
		}
		e.expectKeySet(want)
	}
}
