package recovery

import (
	"fmt"
	"testing"

	"ariesim/internal/buffer"
	"ariesim/internal/core"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// env is a crashable engine: the disk and log survive Crash, everything
// else is rebuilt by restart.
type env struct {
	t     *testing.T
	stats *trace.Stats
	disk  *storage.Disk
	log   *wal.Log

	locks *lock.Manager
	tm    *txn.Manager
	pool  *buffer.Pool
	im    *core.Manager
	ix    *core.Index

	cfg  core.Config
	root storage.PageID
}

func newEnv(t *testing.T, cfg core.Config) *env {
	t.Helper()
	e := &env{t: t, stats: &trace.Stats{}, cfg: cfg}
	e.disk = storage.NewDisk(512)
	e.log = wal.NewLog(e.stats)
	e.buildVolatile()
	tx := e.tm.Begin()
	ix, err := e.im.CreateIndex(tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.ix = ix
	e.root = ix.Root()
	return e
}

func (e *env) buildVolatile() {
	e.locks = lock.NewManager(e.stats)
	e.tm = txn.NewManager(e.log, e.locks)
	e.pool = buffer.NewPool(e.disk, e.log, 128, e.stats)
	e.im = core.NewManager(e.pool, e.stats)
	e.tm.SetUndoer(e.im)
}

// crash loses all volatile state (unforced log tail, buffer pool, locks,
// transaction table).
func (e *env) crash() {
	e.log.Crash()
	e.pool.Crash()
}

// restart rebuilds the managers, reopens the index, and runs recovery.
func (e *env) restart() *Report {
	e.t.Helper()
	e.buildVolatile()
	e.ix = e.im.OpenIndex(e.cfg, e.root)
	rep, err := Restart(e.log, e.pool, e.tm, e.locks, e.stats)
	if err != nil {
		e.t.Fatalf("restart: %v", err)
	}
	return rep
}

func key(i int) storage.Key {
	return storage.Key{
		Val: []byte(fmt.Sprintf("key%05d", i)),
		RID: storage.RID{Page: storage.PageID(1000 + i), Slot: uint16(i % 100)},
	}
}

func (e *env) insertRange(tx *txn.Tx, from, to int) {
	e.t.Helper()
	for i := from; i < to; i++ {
		if err := e.ix.Insert(tx, key(i)); err != nil {
			e.t.Fatalf("insert %d: %v", i, err)
		}
	}
}

func (e *env) deleteRange(tx *txn.Tx, from, to int) {
	e.t.Helper()
	for i := from; i < to; i++ {
		if err := e.ix.Delete(tx, key(i)); err != nil {
			e.t.Fatalf("delete %d: %v", i, err)
		}
	}
}

func (e *env) expectKeySet(want map[int]bool) {
	e.t.Helper()
	if err := e.ix.CheckStructure(); err != nil {
		e.t.Fatal(err)
	}
	got, err := e.ix.Dump()
	if err != nil {
		e.t.Fatal(err)
	}
	gotSet := map[string]bool{}
	for _, k := range got {
		gotSet[string(k.Val)] = true
	}
	for i, present := range want {
		if present && !gotSet[string(key(i).Val)] {
			e.t.Fatalf("key %d missing after restart", i)
		}
		if !present && gotSet[string(key(i).Val)] {
			e.t.Fatalf("key %d present after restart, should be gone", i)
		}
	}
	if n := 0; true {
		for _, p := range want {
			if p {
				n++
			}
		}
		if len(got) != n {
			e.t.Fatalf("index holds %d keys, want %d", len(got), n)
		}
	}
}

func TestRestartRecoversCommittedWork(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 200)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := e.tm.Begin()
	e.deleteRange(tx2, 50, 100)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// Nothing was flushed: the whole tree lives only in the (forced) log.
	e.crash()
	rep := e.restart()
	if rep.RedosApplied == 0 {
		t.Fatal("no redos applied despite empty disk")
	}
	want := map[int]bool{}
	for i := 0; i < 200; i++ {
		want[i] = i < 50 || i >= 100
	}
	e.expectKeySet(want)
}

func TestRestartUndoesInFlight(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 100)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// An in-flight transaction with inserts and deletes.
	inflight := e.tm.Begin()
	e.insertRange(inflight, 200, 240)
	e.deleteRange(inflight, 10, 30)
	e.log.ForceAll() // everything stable, but no commit record
	e.crash()
	rep := e.restart()
	if rep.LosersUndone != 1 {
		t.Fatalf("losers undone = %d, want 1", rep.LosersUndone)
	}
	want := map[int]bool{}
	for i := 0; i < 100; i++ {
		want[i] = true
	}
	for i := 200; i < 240; i++ {
		want[i] = false
	}
	e.expectKeySet(want)
}

func TestRestartAfterPartialFlush(t *testing.T) {
	// Some pages flushed (steal), some not: redo must fill exactly the
	// gaps, guided by page LSNs.
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 300)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Flush roughly half the dirty pages.
	dpt := e.pool.DPT()
	for i, entry := range dpt {
		if i%2 == 0 {
			if err := e.pool.FlushPage(entry.Page); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.crash()
	rep := e.restart()
	if rep.RedosSkipped == 0 {
		t.Fatal("no redos skipped despite flushed pages")
	}
	if rep.RedosApplied == 0 {
		t.Fatal("no redos applied despite unflushed pages")
	}
	want := map[int]bool{}
	for i := 0; i < 300; i++ {
		want[i] = true
	}
	e.expectKeySet(want)
}

func TestRedoIsPageOriented(t *testing.T) {
	// The redo pass must never traverse the tree (§3): the traversal
	// counter stays frozen across redo.
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 300)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.crash()
	e.buildVolatile()
	e.ix = e.im.OpenIndex(e.cfg, e.root)
	before := e.stats.Traversals.Load()
	rep, err := Restart(e.log, e.pool, e.tm, e.locks, e.stats)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedosApplied == 0 {
		t.Fatal("nothing redone")
	}
	if got := e.stats.Traversals.Load(); got != before {
		t.Fatalf("redo pass performed %d tree traversals", got-before)
	}
}

func TestCrashMidSMORestoresStructure(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	setup := e.tm.Begin()
	e.insertRange(setup, 0, 60)
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	splitsBefore := e.stats.PageSplits.Load()
	tx := e.tm.Begin()
	i := 60
	for e.stats.PageSplits.Load() == splitsBefore {
		if err := e.ix.Insert(tx, key(i)); err != nil {
			t.Fatal(err)
		}
		i++
		if i > 1000 {
			t.Fatal("no split")
		}
	}
	// Truncate the stable log in the middle of the SMO: keep the format
	// record but drop the dummy CLR and beyond.
	var cut wal.LSN
	for _, r := range e.log.Records(1) {
		if r.TxID == tx.ID && r.Op == wal.OpIdxSplitLeft {
			cut = r.LSN
		}
	}
	if cut == wal.NilLSN {
		t.Fatal("no split-left record found")
	}
	e.log.Force(cut)
	e.crash()
	rep := e.restart()
	if rep.LosersUndone != 1 {
		t.Fatalf("losers = %d", rep.LosersUndone)
	}
	// The partial SMO was rolled back page-oriented: an unsplit CLR exists.
	foundUnsplit := false
	for _, r := range e.log.Records(1) {
		if r.Type == wal.RecCLR && r.Op == wal.OpIdxUnsplitLeft {
			foundUnsplit = true
		}
	}
	if !foundUnsplit {
		t.Fatal("no page-oriented unsplit CLR written")
	}
	want := map[int]bool{}
	for j := 0; j < 60; j++ {
		want[j] = true
	}
	for j := 60; j < i; j++ {
		want[j] = false
	}
	e.expectKeySet(want)
}

func TestFigure11DeleteBitPOSC(t *testing.T) {
	// T1 deletes a key, freeing space; T2's insert consumes that space
	// after establishing a POSC (Delete_Bit protocol) and commits; the
	// system crashes with T1 in flight. Restart must undo T1's delete
	// logically (a split is needed: the space is gone) — which is only
	// possible because the Delete_Bit forced T2 to wait out any SMO.
	e := newEnv(t, core.Config{ID: 1})
	setup := e.tm.Begin()
	e.insertRange(setup, 0, 100)
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	// T2 will insert keys just after key(anchor); T1 deletes a key on the
	// SAME leaf that is neither adjacent to the insertion point (its
	// next-key lock must not block T2) nor a boundary key (a boundary
	// delete clears the Delete_Bit under its POSC).
	anchor := 15
	leaf, _, err := e.ix.LeafOf(key(anchor))
	if err != nil {
		t.Fatal(err)
	}
	var onLeaf []int
	for i := anchor + 2; i < 100; i++ {
		l, _, err := e.ix.LeafOf(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if l == leaf {
			onLeaf = append(onLeaf, i)
		}
	}
	if len(onLeaf) < 5 {
		t.Fatalf("leaf of key(%d) holds only %d later keys", anchor, len(onLeaf))
	}
	victim := onLeaf[len(onLeaf)/2]
	t1 := e.tm.Begin()
	if err := e.ix.Delete(t1, key(victim)); err != nil {
		t.Fatal(err)
	}

	// T2 fills the same leaf until it spills: the freed space is consumed.
	t2 := e.tm.Begin()
	poscBefore := e.stats.DeleteBitPOSCs.Load()
	j := 0
	for {
		k := storage.Key{Val: append(append([]byte(nil), key(anchor).Val...), byte('a'+j%26), byte('a'+(j/26)%26)),
			RID: storage.RID{Page: storage.PageID(5000 + j), Slot: 1}}
		if err := e.ix.Insert(t2, k); err != nil {
			t.Fatal(err)
		}
		l, _, err := e.ix.LeafOf(k)
		if err != nil {
			t.Fatal(err)
		}
		if l != leaf {
			break // the leaf split: definitely no room left on it
		}
		j++
		if j > 500 {
			t.Fatal("leaf never filled")
		}
	}
	if e.stats.DeleteBitPOSCs.Load() == poscBefore {
		t.Fatal("T2 consumed freed space without establishing a POSC")
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Crash with T1 in flight (everything logged is stable).
	e.log.ForceAll()
	e.crash()
	logicalBefore := e.stats.UndoLogical.Load()
	rep := e.restart()
	if rep.LosersUndone != 1 {
		t.Fatalf("losers = %d", rep.LosersUndone)
	}
	if e.stats.UndoLogical.Load() == logicalBefore {
		t.Fatal("undo of the delete was not logical despite consumed space")
	}
	// T1's deleted key is back; T2's committed inserts survive.
	if err := e.ix.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	dump, err := e.ix.Dump()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	t2Count := 0
	for _, k := range dump {
		if string(k.Val) == string(key(victim).Val) {
			found = true
		}
		if len(k.Val) == len(key(victim).Val)+2 {
			t2Count++
		}
	}
	if !found {
		t.Fatal("T1's deleted key not restored")
	}
	if t2Count < j {
		t.Fatalf("T2's committed inserts lost: %d of %d", t2Count, j)
	}
}

// limitedUndoer injects a failure after a budget of undos, simulating a
// crash in the middle of the restart undo pass.
type limitedUndoer struct {
	inner     txn.Undoer
	remaining int
}

func (u *limitedUndoer) Undo(tx *txn.Tx, rec *wal.Record) error {
	if u.remaining == 0 {
		return fmt.Errorf("injected crash during undo")
	}
	u.remaining--
	return u.inner.Undo(tx, rec)
}

func TestRepeatedCrashBoundedLogging(t *testing.T) {
	// Crash during restart undo, repeatedly: CLR chaining must bound the
	// total log growth — every update is compensated exactly once across
	// all attempts (§1.2).
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 50)
	e.log.ForceAll()
	e.crash()

	countCLRs := func() int {
		n := 0
		for _, r := range e.log.Records(1) {
			if r.Type == wal.RecCLR && r.Op != wal.OpNone {
				n++
			}
		}
		return n
	}

	// Three restarts that die mid-undo (with their partial CLRs forced,
	// as a real log buffer flush would), then a clean one.
	for round := 0; round < 3; round++ {
		e.buildVolatile()
		e.ix = e.im.OpenIndex(e.cfg, e.root)
		e.tm.SetUndoer(&limitedUndoer{inner: e.im, remaining: 10})
		if _, err := Restart(e.log, e.pool, e.tm, e.locks, e.stats); err == nil {
			t.Fatalf("round %d: injected crash did not surface", round)
		}
		e.log.ForceAll()
		e.crash()
	}
	e.restart()
	if got := countCLRs(); got > 50+5 {
		t.Fatalf("%d CLRs for 50 updates: logging not bounded across repeated failures", got)
	}
	e.expectKeySet(map[int]bool{})
}

func TestCheckpointBoundsAnalysis(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 100)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tm.Checkpoint(e.pool)
	tx2 := e.tm.Begin()
	e.insertRange(tx2, 100, 110)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	e.crash()
	rep := e.restart()
	if rep.AnalyzedFrom == wal.NilLSN+1 {
		t.Fatal("analysis ignored the checkpoint")
	}
	// The checkpoint's DPT must still drive redo back before the
	// checkpoint (pages dirtied earlier and never flushed).
	want := map[int]bool{}
	for i := 0; i < 110; i++ {
		want[i] = true
	}
	e.expectKeySet(want)
}

func TestInDoubtTransactionKeepsLocks(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 5)
	// The transaction prepared: its locks must survive the crash.
	if err := tx.Lock(lock.Name{Space: lock.SpaceRecord, A: 42, B: 7}, lock.X, lock.Commit, false); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	e.crash()
	rep := e.restart()
	if len(rep.InDoubt) != 1 || rep.InDoubt[0] != tx.ID {
		t.Fatalf("in-doubt = %v", rep.InDoubt)
	}
	if rep.LocksRestored == 0 {
		t.Fatal("no locks reacquired")
	}
	if !e.locks.HoldsAtLeast(lock.Owner(tx.ID), lock.Name{Space: lock.SpaceRecord, A: 42, B: 7}, lock.X) {
		t.Fatal("prepared transaction's lock not restored")
	}
	// New transactions are blocked by the restored lock.
	blocked := e.tm.Begin()
	err := blocked.Lock(lock.Name{Space: lock.SpaceRecord, A: 42, B: 7}, lock.S, lock.Commit, true)
	if err == nil {
		t.Fatal("in-doubt lock not blocking")
	}
	_ = blocked.Rollback()
	// The coordinator decides commit: the adopted in-doubt tx finishes.
	adopted := e.tm.Lookup(tx.ID)
	if adopted == nil {
		t.Fatal("in-doubt transaction not in table")
	}
	if err := adopted.Commit(); err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	for i := 0; i < 5; i++ {
		want[i] = true
	}
	e.expectKeySet(want)
}

func TestMediaRecovery(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 200)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	img := TakeImageCopy(e.disk, e.log)

	// More committed work after the dump.
	tx2 := e.tm.Begin()
	e.deleteRange(tx2, 0, 20)
	e.insertRange(tx2, 300, 350)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Destroy every index page on disk, then rebuild each from the dump +
	// log roll-forward.
	e.pool.Crash() // drop cached frames so reads hit the damaged disk
	var damaged []storage.PageID
	for _, pid := range e.disk.PageIDs() {
		buf := make([]byte, 512)
		_ = e.disk.Read(pid, buf)
		if storage.PageFromBytes(buf).Type() == storage.PageTypeIndex {
			damaged = append(damaged, pid)
			e.disk.Corrupt(pid)
		}
	}
	if len(damaged) < 3 {
		t.Fatalf("only %d index pages to damage", len(damaged))
	}
	for _, pid := range damaged {
		if err := RecoverPage(e.disk, e.log, img, pid); err != nil {
			t.Fatalf("recover page %d: %v", pid, err)
		}
	}
	want := map[int]bool{}
	for i := 0; i < 200; i++ {
		want[i] = i >= 20
	}
	for i := 300; i < 350; i++ {
		want[i] = true
	}
	e.expectKeySet(want)
}

func TestCrashAtEveryNthRecord(t *testing.T) {
	// Property: crash at many points through a scripted workload; after
	// restart, exactly the transactions whose commit record made it to
	// stable storage are visible, and the tree is structurally sound.
	type txScript struct {
		commitLSN wal.LSN
		from, to  int
		isDelete  bool
	}
	build := func() (*env, []txScript) {
		e := newEnv(t, core.Config{ID: 1})
		var scripts []txScript
		base := e.tm.Begin()
		e.insertRange(base, 0, 120)
		if err := base.Commit(); err != nil {
			t.Fatal(err)
		}
		scripts = append(scripts, txScript{commitLSN: base.LastLSN(), from: 0, to: 120})
		for g := 0; g < 6; g++ {
			tx := e.tm.Begin()
			from := 200 + g*50
			e.insertRange(tx, from, from+30)
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			scripts = append(scripts, txScript{commitLSN: tx.LastLSN(), from: from, to: from + 30})
			del := e.tm.Begin()
			e.deleteRange(del, g*20, g*20+10)
			if err := del.Commit(); err != nil {
				t.Fatal(err)
			}
			scripts = append(scripts, txScript{commitLSN: del.LastLSN(), from: g * 20, to: g*20 + 10, isDelete: true})
		}
		// One in-flight transaction at the end.
		fly := e.tm.Begin()
		e.insertRange(fly, 900, 930)
		return e, scripts
	}

	// Probe crash points spread across the log. Commits force the log, so
	// losing the tail requires the TruncateTo failure-injection hook; that
	// is only a faithful crash if no page ever reached the disk with a
	// higher LSN — asserted via the disk write counter.
	probe, _ := build()
	all := probe.log.Records(1)
	step := len(all) / 12
	if step == 0 {
		step = 1
	}
	for idx := step; idx < len(all); idx += step {
		idx := idx
		t.Run(fmt.Sprintf("crash-at-%d", idx), func(t *testing.T) {
			e, scripts := build()
			if e.disk.WriteCount() != 0 {
				t.Fatal("workload stole pages to disk; truncation would be unfaithful")
			}
			recs := e.log.Records(1)
			cut := recs[idx].LSN
			e.log.TruncateTo(cut)
			e.pool.Crash()
			e.restart()
			want := map[int]bool{}
			for _, s := range scripts {
				if s.commitLSN > cut {
					continue // commit record lost: transaction undone
				}
				for i := s.from; i < s.to; i++ {
					want[i] = !s.isDelete
				}
			}
			e.expectKeySet(want)
		})
	}
}
