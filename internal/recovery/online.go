// Online restart: open for business after analysis, recover on demand.
//
// Offline ARIES restart keeps the engine dark for the whole redo+undo
// span. But redo is strictly page-oriented (paper §3): a page's recovery
// depends only on its own log records, so any page can be recovered the
// moment somebody needs it. Following Sauer & Härder's instant-restart
// design (arXiv 1409.3682), the online coordinator splits restart into
// four phases:
//
//  1. analysis (synchronous): rebuild the transaction table and DPT,
//     exactly as offline restart does;
//  2. lock reinstatement + stabilization (synchronous): prepared
//     transactions reacquire locks from their prepare records; losers are
//     classified — a loser whose remaining undo chain is pure inserts
//     (OpDataInsert / OpIdxInsertKey, with completed nested top actions
//     bypassed via their dummy CLRs) can be undone *after* open under
//     reinstated X record locks, while any loser holding structural work
//     (incomplete SMOs, formats, chain fixes, FSM ops) or deletes (whose
//     commit-duration next-key locks are not derivable from the log) is
//     fully undone *before* open in the classic global reverse-LSN sweep.
//     Pages touched by that sweep are recovered on demand by the hook, so
//     the pre-open phase costs undo work only, not a full redo pass;
//  3. on-demand redo (concurrent, after open): the DPT is installed as a
//     per-page "replay this log suffix" plan behind the buffer pool's
//     recovery hook — a miss read of a planned page replays its records
//     before any fixer sees the page, and the pool's loading-frame
//     protocol makes N concurrent fixers cost one replay;
//  4. background drain + background undo (concurrent, after open):
//     workers walk the remaining plan in first-redo order (prefetching
//     batches so miss reads overlap) while a goroutine rolls back the
//     insert-only losers; their reinstated record locks block readers and
//     ghost purges exactly as a live rollback's locks would.
//
// Crash-fence invariants: no checkpoint may be taken while the plan is
// non-empty (its DPT would miss the un-drained pages; db.Checkpoint is
// gated on Recovering), so a re-crash mid-online-recovery re-analyzes
// from the pre-crash checkpoint and loses nothing. The coordinator takes
// the bounding checkpoint itself once drain and undo both finish.
package recovery

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ariesim/internal/buffer"
	"ariesim/internal/core"
	"ariesim/internal/data"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// ErrRecoveryAborted reports that the background recovery phases were
// aborted (a re-crash) before completing. The volatile state is invalid;
// the next restart recovers from the log as usual.
var ErrRecoveryAborted = errors.New("recovery: online recovery aborted by crash")

// maxDrainRetries bounds how many times the drain re-attempts a page whose
// Fix keeps failing (the pool already retries transient faults and runs
// media recovery internally, so this budget only rides out long seeded
// fault bursts).
const maxDrainRetries = 30

// OnlineOpts configures an online restart.
type OnlineOpts struct {
	RestartOpts
	// Granularity is the engine's data-lock granularity, used to derive
	// the record lock names reinstated for background losers.
	Granularity lock.Granularity
}

// Online coordinates the concurrent phases of an online restart. It is
// created by StartOnline (which runs the synchronous phases and installs
// the recovery hook); the caller marks the engine up and the background
// phases run until Wait returns.
type Online struct {
	log   *wal.Log
	pool  *buffer.Pool
	tm    *txn.Manager
	stats *trace.Stats
	rep   *Report

	workers int

	// mu guards the plan. pending maps each unrecovered DPT page to its
	// redoable log suffix (in LSN order); draining marks pages the drain
	// workers have claimed (attribution for the on-demand/drain split).
	mu       sync.Mutex
	pending  map[storage.PageID][]*wal.Record
	draining map[storage.PageID]bool
	// order is every planned page in first-redo order — the drain's walk.
	order []storage.PageID

	bgLosers []*txn.Tx

	applied  atomic.Int64
	skipped  atomic.Int64
	onDemand atomic.Int64
	drained  atomic.Int64

	abort atomic.Bool
	done  chan struct{}
	err   error
}

// StartOnline runs the synchronous phases of an online restart — analysis,
// plan construction, hook installation, lock reinstatement, and the
// pre-open stabilization undo — then launches the background drain and
// undo and returns. On return the engine is safe to open: every page a
// caller can fix recovers on demand, and every loser either is already
// undone or holds its locks again. The returned report has the open-time
// fields (AnalyzedFrom, RedoFrom, walls, LocksRestored) filled in; the
// redo/undo totals are written by the background phases and must be read
// through Wait.
func StartOnline(log *wal.Log, pool *buffer.Pool, tm *txn.Manager, locks *lock.Manager, stats *trace.Stats, opts OnlineOpts) (*Online, error) {
	start := time.Now()
	rep := &Report{Online: true}
	t := time.Now()
	txTable, dpt, maxTx, err := analyze(log, rep)
	if err != nil {
		return nil, err
	}
	rep.AnalysisWall = time.Since(t)
	tm.SetNextID(maxTx + 1)

	workers := opts.RedoWorkers
	if workers < 1 {
		workers = 1
	}
	o := &Online{
		log:      log,
		pool:     pool,
		tm:       tm,
		stats:    stats,
		rep:      rep,
		workers:  workers,
		pending:  make(map[storage.PageID][]*wal.Record, len(dpt)),
		draining: make(map[storage.PageID]bool),
		done:     make(chan struct{}),
	}
	rep.RedoWorkers = workers

	// Build the per-page redo plan in one pass over the log suffix: the
	// same records and the same per-page filter the offline redo pass
	// applies, grouped by page instead of replayed.
	if len(dpt) == 0 {
		rep.RedoFrom = rep.AnalyzedFrom
	} else {
		redoFrom := wal.LSN(^uint64(0))
		for _, l := range dpt {
			if l < redoFrom {
				redoFrom = l
			}
		}
		rep.RedoFrom = redoFrom
		for _, r := range log.SnapshotFrom(redoFrom) {
			rep.RedoRecordsScanned++
			if !r.Redoable() {
				continue
			}
			rec, ok := dpt[r.Page]
			if !ok || r.LSN < rec {
				continue
			}
			if o.pending[r.Page] == nil {
				o.order = append(o.order, r.Page)
			}
			o.pending[r.Page] = append(o.pending[r.Page], r)
		}
		if stats != nil {
			stats.RedoRecordsScanned.Add(uint64(rep.RedoRecordsScanned))
		}
	}

	// From here on every Fix recovers its page before the caller sees it —
	// including the fixes issued by the stabilization undo below.
	pool.SetRecoveryHook(o.recoverPage)
	fail := func(err error) (*Online, error) {
		pool.SetRecoveryHook(nil)
		return nil, err
	}

	// In-doubt (prepared) transactions: locks from their prepare records.
	if err := reacquireLocks(log, tm, txTable, rep); err != nil {
		return fail(err)
	}

	// Classify losers and reinstate the background-eligible ones' locks.
	stab := map[wal.TxID]*wal.TxTableEntry{}
	for id, e := range txTable {
		if e.State != wal.TxActive && e.State != wal.TxRollingBack {
			continue
		}
		names, bgOK, err := classifyLoser(log, e, opts.Granularity)
		if err != nil {
			return fail(err)
		}
		if !bgOK {
			stab[id] = e
			continue
		}
		for _, n := range names {
			if err := locks.Reinstate(lock.Owner(e.TxID), n, lock.X); err != nil {
				return fail(err)
			}
		}
		rep.LocksRestored += len(names)
		o.bgLosers = append(o.bgLosers, tm.AdoptLoser(*e))
	}

	// Pre-open stabilization: the structural/delete losers are fully undone
	// in the classic global reverse-LSN sweep before anyone else runs, so
	// the tree the background losers' logical undos will traverse — and the
	// tree new transactions see — is structurally consistent at open.
	if err := undoLosers(tm, stab, rep, 0); err != nil {
		return fail(err)
	}
	rep.LosersStabilized = rep.LosersUndone

	rep.OpenWall = time.Since(start)
	go o.run()
	return o, nil
}

// classifyLoser walks e's remaining undo chain (CLRs and dummy CLRs jump
// via UndoNxtLSN, so bypassed nested top actions are not inspected) and
// reports whether every record still to be undone is a pure insert — the
// condition for undoing the loser after open. For an eligible loser it
// returns the deduplicated commit-duration X record-lock names the loser
// must hold at open: ARIES/IM data-only locking names the key lock and the
// record lock identically (the RID), so the inserted record's lock covers
// both the data slot and every index key carrying that RID. Deletes are
// never eligible: their next-key locks are commit-duration but not
// derivable from the log.
func classifyLoser(log *wal.Log, e *wal.TxTableEntry, gran lock.Granularity) ([]lock.Name, bool, error) {
	seen := map[lock.Name]bool{}
	var names []lock.Name
	lsn := e.UndoNxtLSN
	for lsn != wal.NilLSN {
		r, err := log.Read(lsn)
		if err != nil {
			return nil, false, fmt.Errorf("recovery: classify tx %d: %w", e.TxID, err)
		}
		switch {
		case r.IsCLR():
			lsn = r.UndoNxtLSN
		case r.Undoable():
			var name lock.Name
			switch r.Op {
			case wal.OpDataInsert:
				slot, err := data.SlotOfPayload(r.Payload)
				if err != nil {
					return nil, false, fmt.Errorf("recovery: classify tx %d: %w", e.TxID, err)
				}
				name = lock.DataLockName(gran, uint64(r.Page), slot)
			case wal.OpIdxInsertKey:
				info, err := core.DecodeKeyOpPayload(r.Payload)
				if err != nil {
					return nil, false, fmt.Errorf("recovery: classify tx %d: %w", e.TxID, err)
				}
				name = lock.DataLockName(gran, uint64(info.Key.RID.Page), info.Key.RID.Slot)
			default:
				return nil, false, nil // structural work or a delete: stabilize before open
			}
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
			lsn = r.PrevLSN
		default:
			lsn = r.PrevLSN
		}
	}
	return names, true, nil
}

// recoverPage is the buffer pool's recovery hook: replay the page's
// planned log suffix onto the freshly read page image. Runs under the
// pool's loading-frame protocol, so exactly one invocation per planned
// page (unless it fails, in which case the plan entry is restored and the
// next fix retries — replay is idempotent because every record is
// page_LSN-guarded).
func (o *Online) recoverPage(pid storage.PageID, p *storage.Page) (bool, wal.LSN, error) {
	o.mu.Lock()
	recs := o.pending[pid]
	if recs == nil {
		o.mu.Unlock()
		return false, wal.NilLSN, nil
	}
	delete(o.pending, pid)
	byDrain := o.draining[pid]
	o.mu.Unlock()

	dirty := false
	var recLSN wal.LSN
	applied, skipped := 0, 0
	for _, r := range recs {
		if p.LSN() >= uint64(r.LSN) {
			skipped++
			continue
		}
		if err := routeRedo(p, r); err != nil {
			o.mu.Lock()
			o.pending[pid] = recs
			o.mu.Unlock()
			return false, wal.NilLSN, fmt.Errorf("recovery: on-demand redo of %s: %w", r, err)
		}
		p.SetLSN(uint64(r.LSN))
		if !dirty {
			dirty = true
			recLSN = r.LSN
		}
		applied++
	}
	o.applied.Add(int64(applied))
	o.skipped.Add(int64(skipped))
	if byDrain {
		o.drained.Add(1)
	} else {
		o.onDemand.Add(1)
	}
	if o.stats != nil {
		o.stats.RedoApplied.Add(uint64(applied))
		o.stats.RedoSkipped.Add(uint64(skipped))
		if byDrain {
			o.stats.PagesRedoneByDrain.Add(1)
		} else {
			o.stats.PagesRedoneOnDemand.Add(1)
		}
	}
	return dirty, recLSN, nil
}

// run drives the background phases: the DPT drain and the loser undo run
// concurrently; when both finish the hook comes out, the bounding
// checkpoint is taken, and Wait is released.
func (o *Online) run() {
	var wg sync.WaitGroup
	var drainErr, undoErr error
	var redoWall, undoWall time.Duration
	start := time.Now()
	wg.Add(2)
	go func() {
		defer wg.Done()
		drainErr = o.drain()
		redoWall = time.Since(start)
	}()
	go func() {
		defer wg.Done()
		undoErr = o.undoBackground()
		undoWall = time.Since(start)
	}()
	wg.Wait()

	o.rep.RedoWall = redoWall
	o.rep.UndoWall = undoWall
	o.rep.RedosApplied += int(o.applied.Load())
	o.rep.RedosSkipped += int(o.skipped.Load())
	o.rep.PagesOnDemand = int(o.onDemand.Load())
	o.rep.PagesDrained = int(o.drained.Load())
	o.rep.LosersBackground = len(o.bgLosers)
	o.rep.LosersUndone += len(o.bgLosers)

	switch {
	case o.abort.Load():
		o.err = ErrRecoveryAborted
	case drainErr != nil:
		o.err = drainErr
	case undoErr != nil:
		o.err = undoErr
	default:
		// Plan empty, losers gone: recovery is complete. Remove the hook
		// (any in-flight invocation no-ops against the empty plan) and take
		// the checkpoint that bounds the next restart's analysis — the
		// checkpoint db.Checkpoint refused to take while we were pending.
		o.pool.SetRecoveryHook(nil)
		o.tm.Checkpoint(o.pool)
	}
	close(o.done)
}

// drain recovers every still-pending page front-to-back in first-redo
// order, partitioned across workers by the pool's shard hash (the same
// zero-sync split as offline parallel redo). Batches are prefetched so
// miss reads overlap; under a serial-I/O pool Prefetch declines and the
// per-page Fix below does the work.
func (o *Online) drain() error {
	parts := make([][]storage.PageID, o.workers)
	for _, pid := range o.order {
		w := int(buffer.ShardHash(pid) % uint64(o.workers))
		parts[w] = append(parts[w], pid)
	}
	if o.workers == 1 {
		return o.drainPart(parts[0])
	}
	errs := make([]error, o.workers)
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = o.drainPart(parts[w])
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (o *Online) drainPart(pages []storage.PageID) error {
	for i := 0; i < len(pages); {
		if o.abort.Load() {
			return nil
		}
		end := i + redoPrefetchBatch
		if end > len(pages) {
			end = len(pages)
		}
		var live []storage.PageID
		o.mu.Lock()
		for _, pid := range pages[i:end] {
			if _, ok := o.pending[pid]; ok {
				o.draining[pid] = true
				live = append(live, pid)
			}
		}
		o.mu.Unlock()
		i = end
		if len(live) == 0 {
			continue
		}
		o.pool.Prefetch(live)
		var err error
		for _, pid := range live {
			if e := o.drainPage(pid); e != nil && err == nil {
				err = e
			}
		}
		o.mu.Lock()
		for _, pid := range live {
			delete(o.draining, pid)
		}
		o.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// drainPage fixes one page (running the hook if the page is still
// pending), retrying fix failures — the pool's internal retry and media
// recovery handle most faults, so the loop only rides out seeded bursts.
func (o *Online) drainPage(pid storage.PageID) error {
	for attempt := 0; ; attempt++ {
		o.mu.Lock()
		_, ok := o.pending[pid]
		o.mu.Unlock()
		if !ok || o.abort.Load() {
			return nil
		}
		f, err := o.pool.Fix(pid)
		if err == nil {
			o.pool.Unfix(f)
			return nil
		}
		if attempt >= maxDrainRetries {
			return fmt.Errorf("recovery: drain of page %d: %w", pid, err)
		}
		time.Sleep(time.Duration(attempt+1) * 50 * time.Microsecond)
	}
}

// undoBackground rolls back the insert-only losers in the same
// max-UndoNxtLSN order the offline sweep uses. Their reinstated X record
// locks make each logical key-removal invisible to readers until the
// loser ends — exactly a live rollback's contract.
func (o *Online) undoBackground() error {
	losers := map[wal.TxID]*txn.Tx{}
	for _, t := range o.bgLosers {
		losers[t.ID] = t
	}
	for len(losers) > 0 {
		if o.abort.Load() {
			return nil
		}
		var victim *txn.Tx
		for _, t := range losers {
			if t.UndoNxtLSN() == wal.NilLSN {
				t.EndLoser()
				delete(losers, t.ID)
				continue
			}
			if victim == nil || t.UndoNxtLSN() > victim.UndoNxtLSN() {
				victim = t
			}
		}
		if victim == nil {
			break
		}
		if err := victim.UndoStep(); err != nil {
			return err
		}
		if victim.UndoNxtLSN() == wal.NilLSN {
			victim.EndLoser()
			delete(losers, victim.ID)
		}
	}
	return nil
}

// OpenReport returns the report with its open-time fields (analysis wall,
// locks restored, open wall) filled in. The redo/undo totals are written
// by the background phases; read them through Wait instead.
func (o *Online) OpenReport() *Report {
	return o.rep
}

// Abort asks the background phases to stop (a re-crash). Non-blocking;
// the phases observe the flag at their next step and Wait then returns
// ErrRecoveryAborted. Safe to call at any time, including after
// completion (then a no-op).
func (o *Online) Abort() {
	o.abort.Store(true)
}

// Recovering reports whether background recovery is still in flight.
func (o *Online) Recovering() bool {
	select {
	case <-o.done:
		return false
	default:
		return true
	}
}

// Wait blocks until the background phases finish (or abort) and returns
// the completed report. The report's redo/undo fields are valid only
// after Wait returns.
func (o *Online) Wait() (*Report, error) {
	<-o.done
	return o.rep, o.err
}
