package latch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ariesim/internal/trace"
)

func TestSharedHoldersCoexist(t *testing.T) {
	l := New(nil)
	l.Acquire(S)
	if !l.TryAcquire(S) {
		t.Fatal("second S hold denied")
	}
	l.Release(S)
	l.Release(S)
}

func TestExclusiveExcludes(t *testing.T) {
	l := New(nil)
	l.Acquire(X)
	if l.TryAcquire(S) {
		t.Fatal("S granted under X")
	}
	if l.TryAcquire(X) {
		t.Fatal("X granted under X")
	}
	l.Release(X)
	if !l.TryAcquire(X) {
		t.Fatal("X denied after release")
	}
	l.Release(X)
}

func TestTryUnderSharedDeniesX(t *testing.T) {
	l := New(nil)
	l.Acquire(S)
	if l.TryAcquire(X) {
		t.Fatal("X granted under S")
	}
	l.Release(S)
}

func TestBlockingHandoff(t *testing.T) {
	l := New(nil)
	l.Acquire(X)
	got := make(chan struct{})
	go func() {
		l.Acquire(S)
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("S granted while X held")
	case <-time.After(20 * time.Millisecond):
	}
	l.Release(X)
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("S never granted after X release")
	}
	l.Release(S)
}

func TestWriterPreference(t *testing.T) {
	l := New(nil)
	l.Acquire(S)
	xGot := make(chan struct{})
	go func() {
		l.Acquire(X)
		close(xGot)
	}()
	// Wait for the writer to queue.
	for i := 0; ; i++ {
		l.mu.Lock()
		q := l.wWait
		l.mu.Unlock()
		if q == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("writer never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// A new reader must now be refused (writer preference).
	if l.TryAcquire(S) {
		t.Fatal("reader admitted past a queued writer")
	}
	l.Release(S)
	select {
	case <-xGot:
	case <-time.After(time.Second):
		t.Fatal("queued writer never granted")
	}
	l.Release(X)
}

func TestAcquireInstantWaitsForSMO(t *testing.T) {
	l := NewTree(nil)
	l.Acquire(X) // SMO in progress
	done := make(chan struct{})
	go func() {
		l.AcquireInstant(S) // traverser waiting for SMO completion
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("instant latch granted during SMO")
	case <-time.After(20 * time.Millisecond):
	}
	l.Release(X)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("instant latch never granted")
	}
	// After the instant acquisition nothing is held.
	if !l.TryAcquire(X) {
		t.Fatal("latch still held after instant acquisition")
	}
	l.Release(X)
}

func TestReleaseWithoutHoldPanics(t *testing.T) {
	for _, m := range []Mode{S, X} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("release(%v) without hold did not panic", m)
				}
			}()
			New(nil).Release(m)
		}()
	}
}

func TestStatsCounting(t *testing.T) {
	st := &trace.Stats{}
	l := New(st)
	l.Acquire(S)
	l.Release(S)
	if l.TryAcquire(X) {
		l.Release(X)
	}
	l.Acquire(X)
	if l.TryAcquire(S) {
		t.Fatal("S under X")
	}
	l.Release(X)
	if got := st.LatchAcquires.Load(); got != 3 {
		t.Errorf("LatchAcquires = %d, want 3", got)
	}
	if got := st.LatchTryFailures.Load(); got != 1 {
		t.Errorf("LatchTryFailures = %d, want 1", got)
	}
	tl := NewTree(st)
	tl.Acquire(X)
	tl.Release(X)
	if got := st.TreeLatchAcquires.Load(); got != 1 {
		t.Errorf("TreeLatchAcquires = %d, want 1", got)
	}
}

func TestModeString(t *testing.T) {
	if S.String() != "S" || X.String() != "X" {
		t.Fatal("mode strings wrong")
	}
}

// TestStressMutualExclusion hammers the latch from many goroutines and
// verifies the S/X invariant (readers xor one writer) with a shared counter.
func TestStressMutualExclusion(t *testing.T) {
	l := New(&trace.Stats{})
	var inX atomic.Int32
	var inS atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if (g+i)%4 == 0 {
					l.Acquire(X)
					if inX.Add(1) != 1 || inS.Load() != 0 {
						violations.Add(1)
					}
					inX.Add(-1)
					l.Release(X)
				} else {
					l.Acquire(S)
					inS.Add(1)
					if inX.Load() != 0 {
						violations.Add(1)
					}
					inS.Add(-1)
					l.Release(S)
				}
			}
		}(g)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
}

// TestLatchCouplingOrderNoDeadlock simulates the paper's §4 protocol:
// goroutines always latch parent before child, so no deadlock occurs.
func TestLatchCouplingOrderNoDeadlock(t *testing.T) {
	chain := []*Latch{New(nil), New(nil), New(nil), New(nil)}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				mode := S
				if g%2 == 0 {
					mode = X
				}
				// Latch-couple down the chain.
				chain[0].Acquire(mode)
				for d := 1; d < len(chain); d++ {
					chain[d].Acquire(mode)
					chain[d-1].Release(mode)
				}
				chain[len(chain)-1].Release(mode)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("latch coupling deadlocked")
	}
}
