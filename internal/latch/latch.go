// Package latch implements the short-duration physical-consistency locks
// ("latches") of ARIES/IM.
//
// ARIES uses latches on pages to assure physical consistency of accessed
// information and locks on data to assure logical consistency (paper §1.2).
// Latches differ from locks in three ways that this package preserves:
//
//   - they cost tens of instructions, not hundreds: no hash table, no
//     deadlock detection — a bare synchronization object per page;
//   - deadlock freedom comes from protocol (the paper §4 ordering rules:
//     parent→child, leaf→next-leaf, release low before latching high), so
//     there is no detector;
//   - they support conditional (try) acquisition, which the protocols use
//     whenever the ordering rules cannot guarantee safety.
//
// The per-index tree latch that serializes structure modification
// operations is the same type with an extra instant-duration helper.
package latch

import (
	"sync"

	"ariesim/internal/trace"
)

// Mode is a latch mode: shared or exclusive.
type Mode int

const (
	// S is the shared mode, allowing concurrent readers.
	S Mode = iota
	// X is the exclusive mode.
	X
)

func (m Mode) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

// Latch is an S/X latch with conditional acquisition and writer preference
// (a waiting writer blocks new readers, preventing writer starvation during
// read-heavy traversals).
//
// The zero value is NOT ready; use New so statistics can be attached.
type Latch struct {
	mu      sync.Mutex
	cond    *sync.Cond
	readers int  // active shared holders
	writer  bool // active exclusive holder
	wWait   int  // queued writers

	stats *trace.Stats
	tree  bool // report into the tree-latch counters
}

// New creates a latch reporting into stats (which may be nil).
func New(stats *trace.Stats) *Latch {
	l := &Latch{stats: stats}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// NewTree creates a tree latch: identical semantics, separate counters, so
// benches can distinguish tree-latch traffic from page-latch traffic.
func NewTree(stats *trace.Stats) *Latch {
	l := New(stats)
	l.tree = true
	return l
}

func (l *Latch) countAcquire(waited bool) {
	if l.stats == nil {
		return
	}
	if l.tree {
		l.stats.TreeLatchAcquires.Add(1)
		if waited {
			l.stats.TreeLatchWaits.Add(1)
		}
		return
	}
	l.stats.LatchAcquires.Add(1)
	if waited {
		l.stats.LatchWaits.Add(1)
	}
}

func (l *Latch) countTryFailure() {
	if l.stats != nil {
		l.stats.LatchTryFailures.Add(1)
	}
}

func (l *Latch) grantableS() bool { return !l.writer && l.wWait == 0 }
func (l *Latch) grantableX() bool { return !l.writer && l.readers == 0 }

// Acquire blocks until the latch is granted in the given mode.
func (l *Latch) Acquire(m Mode) {
	l.mu.Lock()
	defer l.mu.Unlock()
	waited := false
	if m == S {
		for !l.grantableS() {
			waited = true
			l.cond.Wait()
		}
		l.readers++
	} else {
		l.wWait++
		for !l.grantableX() {
			waited = true
			l.cond.Wait()
		}
		l.wWait--
		l.writer = true
	}
	l.countAcquire(waited)
}

// TryAcquire attempts a conditional acquisition; it never blocks.
func (l *Latch) TryAcquire(m Mode) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m == S {
		if !l.grantableS() {
			l.countTryFailure()
			return false
		}
		l.readers++
	} else {
		if !l.grantableX() {
			l.countTryFailure()
			return false
		}
		l.writer = true
	}
	l.countAcquire(false)
	return true
}

// Release drops a hold in the given mode.
func (l *Latch) Release(m Mode) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m == S {
		if l.readers <= 0 {
			panic("latch: S release without hold")
		}
		l.readers--
	} else {
		if !l.writer {
			panic("latch: X release without hold")
		}
		l.writer = false
	}
	l.cond.Broadcast()
}

// AcquireInstant waits until the latch would be grantable in mode m and
// immediately releases it. The paper's traversal logic uses an instant
// S tree latch to wait for an unfinished SMO to complete (Figs 4, 6, 7).
func (l *Latch) AcquireInstant(m Mode) {
	l.Acquire(m)
	l.Release(m)
}

// HeldExclusively reports whether some goroutine holds the latch in X mode.
// Used only by invariant assertions in tests.
func (l *Latch) HeldExclusively() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writer
}
