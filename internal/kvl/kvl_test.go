package kvl

import (
	"testing"

	"ariesim/internal/buffer"
	"ariesim/internal/core"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

func TestFacadeCreatesKVLIndex(t *testing.T) {
	stats := &trace.Stats{}
	disk := storage.NewDisk(512)
	log := wal.NewLog(stats)
	pool := buffer.NewPool(disk, log, 64, stats)
	locks := lock.NewManager(stats)
	tm := txn.NewManager(log, locks)
	im := core.NewManager(pool, stats)
	tm.SetUndoer(im)

	tx := tm.Begin()
	ix, err := CreateIndex(tx, im, 7, false, lock.GranRecord)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if ix.Protocol() != core.KVL {
		t.Fatalf("protocol = %v", ix.Protocol())
	}
	// An insert acquires key-value locks, the KVL signature.
	w := tm.Begin()
	if err := ix.Insert(w, storage.Key{Val: []byte("kv"), RID: storage.RID{Page: 9, Slot: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	kvCalls := uint64(0)
	for m := 0; m < trace.MaxModes; m++ {
		for d := 0; d < trace.MaxDurations; d++ {
			kvCalls += stats.LockCalls(int(lock.SpaceKeyValue), m, d)
		}
	}
	if kvCalls == 0 {
		t.Fatal("no key-value locks taken by the KVL facade")
	}
	if cfg := Config(3, true, lock.GranPage); cfg.Protocol != core.KVL || !cfg.Unique {
		t.Fatalf("Config = %+v", cfg)
	}
}
