// Package kvl exposes the ARIES/KVL baseline: key-value locking as in
// "ARIES/KVL: A Key-Value Locking Method for Concurrency Control of
// Multiaction Transactions Operating on B-Tree Indexes" (Mohan, VLDB
// 1990) — the method ARIES/IM §1 positions itself against.
//
// The baseline runs on the identical B+-tree substrate (internal/core)
// with only the lock sequences swapped, so lock-count and throughput
// comparisons against ARIES/IM isolate exactly the protocol difference:
//
//   - a fetch S-locks the current key VALUE for commit duration;
//   - an insert of a new value takes an instant IX on the next key value
//     plus a commit-duration X on the inserted value; inserting another
//     instance of an existing value takes a commit-duration IX on it;
//   - deleting the last instance of a value takes commit-duration X locks
//     on both the deleted and the next key value; deleting one of several
//     instances takes a commit-duration IX on the value.
//
// Because locks name VALUES, all instances of one value in a nonunique
// index conflict on a single lock — the concurrency loss §1 calls out
// ("locks are acquired on key values, rather than on individual keys").
// The record manager's record locks are still required on top, which is
// why KVL's lock count per single-record operation exceeds ARIES/IM's.
package kvl

import (
	"ariesim/internal/core"
	"ariesim/internal/lock"
	"ariesim/internal/txn"
)

// Config builds a core index configuration running the KVL protocol.
func Config(id uint32, unique bool, gran lock.Granularity) core.Config {
	return core.Config{ID: id, Unique: unique, Protocol: core.KVL, Granularity: gran}
}

// CreateIndex creates a KVL-locked index on the shared tree substrate.
func CreateIndex(tx *txn.Tx, m *core.Manager, id uint32, unique bool, gran lock.Granularity) (*core.Index, error) {
	return m.CreateIndex(tx, Config(id, unique, gran))
}
