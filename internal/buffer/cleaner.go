package buffer

import (
	"sync"
	"sync/atomic"
	"time"

	"ariesim/internal/latch"
	"ariesim/internal/wal"
)

// DefaultCleanerBatch is the per-shard page budget of one cleaner pass.
const DefaultCleanerBatch = 16

// The background page cleaner decouples page propagation from the
// transaction path (Sauer & Härder's asynchronous-writeback argument): a
// periodic pass walks each shard just ahead of the clock hand and flushes
// dirty, unpinned frames in batches, so
//
//   - foreground evictions almost always find clean victims (a steal
//     writeback on the Fix path becomes the exception, not the rule), and
//   - the dirty page table handed to fuzzy checkpoints stays small, which
//     bounds restart redo work.
//
// Each shard's batch is flushed by its own goroutine with a single
// coalesced log force covering the batch's maximum page_LSN, so a pass
// pays one group-commit-path force rather than one per page.

// StartCleaner launches the background cleaner flushing up to batch dirty
// frames per shard every interval. It is a no-op if the cleaner is already
// running or interval is not positive. batch <= 0 uses DefaultCleanerBatch.
func (p *Pool) StartCleaner(interval time.Duration, batch int) {
	if interval <= 0 {
		return
	}
	if batch <= 0 {
		batch = DefaultCleanerBatch
	}
	p.cleanMu.Lock()
	defer p.cleanMu.Unlock()
	if p.cleanStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	p.cleanStop, p.cleanDone = stop, done
	go p.cleanerLoop(interval, batch, stop, done)
}

// StopCleaner stops the background cleaner and waits for its in-flight
// pass to finish, so no cleaner write can happen after it returns. It is
// idempotent and safe on a pool whose cleaner never started.
func (p *Pool) StopCleaner() {
	p.cleanMu.Lock()
	stop, done := p.cleanStop, p.cleanDone
	p.cleanStop, p.cleanDone = nil, nil
	p.cleanMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (p *Pool) cleanerLoop(interval time.Duration, batch int, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		// Drain: repeat batched passes until no dirty unpinned frame remains
		// ahead of the hands. The batch cap (half a shard per pass) still
		// bounds how many frames are pinned at any instant, but a single
		// capped pass per tick cannot keep up when the tick is coarse and
		// the foreground dirties pages quickly.
		for p.CleanPass(batch) > 0 {
			select {
			case <-stop:
				return
			default:
			}
		}
	}
}

// CleanPass runs one cleaner pass: every shard concurrently flushes up to
// batch dirty, unpinned frames starting at its clock hand (the frames the
// next evictions will reach). Frames stay resident — the cleaner cleans,
// it does not evict — and their reference bits are untouched, so cleaning
// grants no second chance. Returns the number of frames cleaned.
// Exported so tests and quiesce points can drive the cleaner explicitly.
func (p *Pool) CleanPass(batch int) int {
	if batch <= 0 {
		batch = DefaultCleanerBatch
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := range p.shards {
		wg.Add(1)
		go func(s *poolShard) {
			defer wg.Done()
			total.Add(int64(p.cleanShard(s, batch)))
		}(&p.shards[i])
	}
	wg.Wait()
	if p.stats != nil {
		p.stats.CleanerPasses.Add(1)
	}
	return int(total.Load())
}

// cleanShard collects up to batch dirty unpinned frames ahead of the clock
// hand under the shard lock, then writes them back with the lock released.
func (p *Pool) cleanShard(s *poolShard, batch int) int {
	s.mu.Lock()
	n := len(s.slots)
	// Never pin more than half the shard at once: the cleaner's batch
	// holds its pins across a batch of page writes, and taking the whole
	// shard would starve foreground fixers into ErrPoolExhausted stalls.
	if limit := n / 2; batch > limit {
		batch = limit
		if batch < 1 {
			batch = 1
		}
	}
	victims := make([]*Frame, 0, batch)
	for i := 0; i < n && len(victims) < batch; i++ {
		f := s.slots[(s.hand+i)%n]
		if f == nil || f.pins.Load() != 0 || !f.isDirty() {
			continue
		}
		// Pin under s.mu: the zero pin count cannot change concurrently,
		// so the frame cannot be evicted out from under the writeback.
		f.pins.Add(1)
		victims = append(victims, f)
	}
	s.mu.Unlock()
	if len(victims) == 0 {
		return 0
	}
	// Coalesce the WAL requirement: one force to the batch's maximum
	// page_LSN covers every victim, so the per-frame force inside
	// writeBack degenerates to a stable check.
	var maxLSN wal.LSN
	for _, f := range victims {
		f.Latch.Acquire(latch.S)
		if l := wal.LSN(f.Page.LSN()); l > maxLSN {
			maxLSN = l
		}
		f.Latch.Release(latch.S)
	}
	p.log.Force(maxLSN)
	cleaned := 0
	for _, f := range victims {
		if err := p.writeBack(f); err == nil {
			cleaned++
			if p.stats != nil {
				p.stats.CleanerWrites.Add(1)
			}
		}
		// Plain unpin, not Unfix: cleaning must not set the reference bit.
		f.pins.Add(-1)
	}
	return cleaned
}
