package buffer

import (
	"testing"

	"ariesim/internal/storage"
)

func TestPrefetchBringsPagesResident(t *testing.T) {
	d, _, p, st := newEnv(64)
	buf := make([]byte, 512)
	ids := []storage.PageID{3, 9, 27, 81}
	for _, id := range ids {
		pg := storage.NewPage(512)
		pg.Bytes()[100] = byte(id)
		copy(buf, pg.Bytes())
		if err := d.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}

	if n := p.Prefetch(ids); n != len(ids) {
		t.Fatalf("prefetched %d pages, want %d", n, len(ids))
	}
	for _, id := range ids {
		if !p.Contains(id) {
			t.Fatalf("page %d not resident after prefetch", id)
		}
	}
	if got := st.PagesPrefetched.Load(); got != uint64(len(ids)) {
		t.Fatalf("PagesPrefetched = %d, want %d", got, len(ids))
	}
	if pinned := p.PinnedPages(); len(pinned) != 0 {
		t.Fatalf("prefetch leaked pins on pages %v", pinned)
	}

	// A second prefetch of resident pages is a no-op.
	misses := st.PageMisses.Load()
	if n := p.Prefetch(ids); n != 0 {
		t.Fatalf("re-prefetch fetched %d pages, want 0", n)
	}
	if got := st.PageMisses.Load(); got != misses {
		t.Fatalf("re-prefetch paid %d extra disk reads", got-misses)
	}
}

func TestPrefetchSerialIOPoolDeclines(t *testing.T) {
	_, _, p, st := newEnvCfg(Config{Capacity: 16, Shards: 1, SerialIO: true})
	if n := p.Prefetch([]storage.PageID{1, 2, 3}); n != 0 {
		t.Fatalf("serial-I/O pool prefetched %d pages; overlap is impossible there", n)
	}
	if got := st.PagesPrefetched.Load(); got != 0 {
		t.Fatalf("PagesPrefetched = %d on a serial-I/O pool", got)
	}
}
