package buffer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ariesim/internal/latch"
	"ariesim/internal/storage"
	"ariesim/internal/wal"
)

// TestShardStress hammers Fix/Unfix/MarkDirty/eviction across every shard
// from many goroutines, with a pin-leak and DPT-sanity invariant check
// after every quiesced round. Run under -race this exercises the lock-free
// Unfix/MarkDirty paths against concurrent sweeps and writebacks.
func TestShardStress(t *testing.T) {
	_, l, p, st := newEnvCfg(Config{Capacity: 32, Shards: 8})
	const (
		workers = 8
		pages   = 96 // 3x capacity: every round forces evictions
	)
	rounds, opsPerRound := 8, 400
	if testing.Short() {
		rounds, opsPerRound = 3, 150
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < opsPerRound; i++ {
					id := storage.PageID((g*31+i*7)%pages + 2)
					f, err := p.Fix(id)
					if err != nil {
						if errors.Is(err, ErrPoolExhausted) {
							continue
						}
						t.Errorf("fix %d: %v", id, err)
						return
					}
					if f.ID() != id {
						t.Errorf("fix %d returned frame for page %d", id, f.ID())
					}
					if i%4 == 0 {
						f.Latch.Acquire(latch.X)
						lsn := l.Append(&wal.Record{Type: wal.RecUpdate, TxID: wal.TxID(g + 1), Page: id, Op: wal.OpIdxSetBits})
						f.Page.SetLSN(uint64(lsn))
						p.MarkDirty(f, lsn)
						f.Latch.Release(latch.X)
					} else {
						f.Latch.Acquire(latch.S)
						_ = f.Page.LSN()
						f.Latch.Release(latch.S)
					}
					p.Unfix(f)
				}
			}(g)
		}
		wg.Wait()
		// Quiesced invariants: no pin leaked, the pool respected its
		// budget, and every DPT entry is coherent (recLSN set, <= page LSN).
		if pinned := p.PinnedPages(); len(pinned) != 0 {
			t.Fatalf("round %d: pins leaked: %v", round, pinned)
		}
		if n := p.NumBuffered(); n > 32 {
			t.Fatalf("round %d: %d frames resident, capacity 32", round, n)
		}
		for _, e := range p.DPT() {
			if e.RecLSN == wal.NilLSN {
				t.Fatalf("round %d: dirty page %d with nil recLSN", round, e.Page)
			}
		}
	}
	if st.PageEvicted.Load() == 0 {
		t.Fatal("stress never evicted despite 3x-capacity page set")
	}
}

// TestMissStormSingleRead checks the I/O-in-progress frame state: N
// goroutines fixing the same uncached page must trigger exactly one disk
// read — the rest park on the frame and share the loader's result.
func TestMissStormSingleRead(t *testing.T) {
	d, _, p, _ := newEnvCfg(Config{Capacity: 8, Shards: 4})
	content := make([]byte, 512)
	content[100] = 0x5A
	if err := d.Write(77, content); err != nil {
		t.Fatal(err)
	}
	d.SetIODelay(2 * time.Millisecond) // widen the in-flight window
	reads0 := d.ReadCount()

	const n = 16
	frames := make([]*Frame, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := p.Fix(77)
			if err != nil {
				t.Errorf("fix: %v", err)
				return
			}
			frames[i] = f
		}(i)
	}
	wg.Wait()
	if got := d.ReadCount() - reads0; got != 1 {
		t.Fatalf("miss storm issued %d disk reads, want exactly 1", got)
	}
	for i, f := range frames {
		if f == nil {
			t.Fatalf("fixer %d got no frame", i)
		}
		if f != frames[0] {
			t.Fatal("fixers got distinct frames for one page")
		}
		if f.Page.Bytes()[100] != 0x5A {
			t.Fatal("parked fixer saw wrong content")
		}
		p.Unfix(f)
	}
	if pinned := p.PinnedPages(); len(pinned) != 0 {
		t.Fatalf("pins leaked: %v", pinned)
	}
}

// TestMissReadDoesNotBlockOtherPages verifies I/O runs outside the shard
// lock: while one fixer's miss read sleeps on a slow device, a fix of an
// already-resident page in the same shard must complete immediately.
func TestMissReadDoesNotBlockOtherPages(t *testing.T) {
	d, _, p, _ := newEnvCfg(Config{Capacity: 8, Shards: 1})
	fa, err := p.Fix(5) // resident, hot
	if err != nil {
		t.Fatal(err)
	}
	p.Unfix(fa)

	d.SetIODelay(50 * time.Millisecond)
	started := make(chan struct{})
	go func() {
		close(started)
		f, err := p.Fix(6) // slow miss holds no shard lock while reading
		if err == nil {
			p.Unfix(f)
		}
	}()
	<-started
	time.Sleep(time.Millisecond) // let the loader enter its read
	t0 := time.Now()
	fb, err := p.Fix(5)
	if err != nil {
		t.Fatal(err)
	}
	p.Unfix(fb)
	if hitLatency := time.Since(t0); hitLatency > 25*time.Millisecond {
		t.Fatalf("hit stalled %v behind another page's miss read", hitLatency)
	}
	d.SetIODelay(0)
}

// TestFullPinBoundedRetry checks the transient-exhaustion path: a Fix that
// finds every frame pinned waits out the pin holder and succeeds instead
// of surfacing ErrPoolExhausted, counting the stall.
func TestFullPinBoundedRetry(t *testing.T) {
	_, _, p, st := newEnvCfg(Config{Capacity: 1, Shards: 1})
	f, err := p.Fix(5)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(200 * time.Microsecond)
		p.Unfix(f)
	}()
	f2, err := p.Fix(6) // retries while 5 is pinned, then wins the frame
	if err != nil {
		t.Fatalf("fix did not ride out the transient full-pin: %v", err)
	}
	p.Unfix(f2)
	if st.EvictionStalls.Load() == 0 {
		t.Fatal("no EvictionStalls counted for the bounded wait")
	}
}

// TestFlushAllJoinedError checks that FlushAll attempts every dirty page
// and reports all failures joined, instead of aborting at the first bad
// page and leaving later pages unflushed.
func TestFlushAllJoinedError(t *testing.T) {
	d, l, p, _ := newEnvCfg(Config{Capacity: 4, Shards: 1})
	for _, id := range []storage.PageID{2, 3} {
		f, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		update(t, p, l, f, byte(id))
		p.Unfix(f)
	}
	// Page 2 flushes first (ascending order) and exhausts its write
	// retries; page 3's writes then succeed.
	d.SetInjector(&scripted{writes: failWrites(maxIORetries + 1)})

	err := p.FlushAll()
	if err == nil {
		t.Fatal("FlushAll reported success despite a failed page")
	}
	if !errors.Is(err, storage.ErrTransientIO) {
		t.Fatalf("joined error lost the cause: %v", err)
	}
	dpt := p.DPT()
	if len(dpt) != 1 || dpt[0].Page != 2 {
		t.Fatalf("DPT after partial FlushAll = %+v, want only page 2", dpt)
	}
	buf := make([]byte, 512)
	if rerr := d.Read(3, buf); rerr != nil {
		t.Fatal(rerr)
	}
	if storage.PageFromBytes(buf).LSN() == 0 {
		t.Fatal("page 3 was not flushed after page 2's failure")
	}
	// The fault schedule is drained; a retry completes the quiesce.
	if err := p.FlushAll(); err != nil {
		t.Fatalf("retry after joined failure: %v", err)
	}
	if len(p.DPT()) != 0 {
		t.Fatal("DPT not empty after successful FlushAll retry")
	}
}

// TestConcurrentSameShardMix drives fixes, flushes, and DPT snapshots at a
// single shard concurrently — the worst case for the shard mutex — and
// verifies content integrity via per-page fill bytes.
func TestConcurrentSameShardMix(t *testing.T) {
	_, l, p, _ := newEnvCfg(Config{Capacity: 4, Shards: 1})
	pages := []storage.PageID{2, 3, 4, 5, 6, 7}
	iters := 300
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := pages[(g+i)%len(pages)]
				switch i % 3 {
				case 0:
					f, err := p.Fix(id)
					if err != nil {
						if errors.Is(err, ErrPoolExhausted) {
							continue
						}
						t.Errorf("fix: %v", err)
						return
					}
					f.Latch.Acquire(latch.X)
					lsn := l.Append(&wal.Record{Type: wal.RecUpdate, TxID: wal.TxID(g + 1), Page: id, Op: wal.OpIdxSetBits, Payload: []byte{byte(id)}})
					f.Page.Bytes()[128] = byte(id) // page-determined fill: any mix is self-consistent
					f.Page.SetLSN(uint64(lsn))
					p.MarkDirty(f, lsn)
					f.Latch.Release(latch.X)
					p.Unfix(f)
				case 1:
					if err := p.FlushPage(id); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				case 2:
					for _, e := range p.DPT() {
						if e.RecLSN == wal.NilLSN {
							t.Errorf("dirty page %d with nil recLSN", e.Page)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if pinned := p.PinnedPages(); len(pinned) != 0 {
		t.Fatalf("pins leaked: %v", pinned)
	}
	for _, id := range pages {
		f, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		if b := f.Page.Bytes()[128]; b != 0 && b != byte(id) {
			t.Fatalf("page %d carries foreign fill byte %#x", id, b)
		}
		p.Unfix(f)
	}
}
