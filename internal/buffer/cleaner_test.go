package buffer

import (
	"sync"
	"testing"
	"time"

	"ariesim/internal/storage"
	"ariesim/internal/wal"
)

// TestCleanPassFlushesDirtyFrames: one pass cleans every dirty unpinned
// frame — the DPT empties, the frames stay resident, the WAL is forced to
// cover the written pages, and the work is counted as cleaner writes.
func TestCleanPassFlushesDirtyFrames(t *testing.T) {
	d, l, p, st := newEnvCfg(Config{Capacity: 8, Shards: 2})
	var maxLSN wal.LSN
	for id := storage.PageID(2); id <= 7; id++ {
		f, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		if lsn := update(t, p, l, f, byte(id)); lsn > maxLSN {
			maxLSN = lsn
		}
		p.Unfix(f)
	}
	if l.StableLSN() >= maxLSN {
		t.Fatal("log already stable before the cleaner ran")
	}

	// A single pass is capped at half of each shard (it must not starve
	// foreground fixers), so drain with repeated passes.
	cleaned, passes := 0, 0
	for n := p.CleanPass(DefaultCleanerBatch); n > 0; n = p.CleanPass(DefaultCleanerBatch) {
		cleaned += n
		passes++
	}
	if cleaned != 6 {
		t.Fatalf("clean passes flushed %d frames, want 6", cleaned)
	}
	if passes < 2 {
		t.Fatalf("one pass cleaned everything: the half-shard batch cap is gone")
	}
	if len(p.DPT()) != 0 {
		t.Fatalf("DPT after clean passes: %+v", p.DPT())
	}
	if l.StableLSN() < maxLSN {
		t.Fatalf("cleaner wrote pages without forcing WAL: stable=%d max page LSN=%d", l.StableLSN(), maxLSN)
	}
	if got := st.CleanerWrites.Load(); got != 6 {
		t.Fatalf("CleanerWrites = %d, want 6", got)
	}
	if got := st.CleanerPasses.Load(); got != uint64(passes)+1 {
		t.Fatalf("CleanerPasses = %d, want %d", got, passes+1)
	}
	// Frames stay resident: re-fixing every page is a pure hit.
	misses := st.PageMisses.Load()
	for id := storage.PageID(2); id <= 7; id++ {
		f, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(f)
	}
	if st.PageMisses.Load() != misses {
		t.Fatal("cleaner evicted frames instead of cleaning them in place")
	}
	// And the contents hit the disk.
	buf := make([]byte, 512)
	if err := d.Read(5, buf); err != nil {
		t.Fatal(err)
	}
	if storage.PageFromBytes(buf).LSN() == 0 {
		t.Fatal("cleaned page not on disk")
	}
}

// TestCleanPassSkipsPinnedFrames: a pinned dirty frame is left alone.
func TestCleanPassSkipsPinnedFrames(t *testing.T) {
	_, l, p, _ := newEnvCfg(Config{Capacity: 4, Shards: 1})
	f, err := p.Fix(3)
	if err != nil {
		t.Fatal(err)
	}
	update(t, p, l, f, 0x33) // dirty and pinned
	g, err := p.Fix(4)
	if err != nil {
		t.Fatal(err)
	}
	update(t, p, l, g, 0x44)
	p.Unfix(g) // dirty and unpinned

	if cleaned := p.CleanPass(DefaultCleanerBatch); cleaned != 1 {
		t.Fatalf("CleanPass cleaned %d frames, want only the unpinned one", cleaned)
	}
	dpt := p.DPT()
	if len(dpt) != 1 || dpt[0].Page != 3 {
		t.Fatalf("DPT = %+v, want only the pinned page 3", dpt)
	}
	p.Unfix(f)
}

// TestCleanerMakesForegroundEvictionsClean: after a clean pass, a
// capacity-forced eviction finds a clean victim — no dirty steal on the
// foreground Fix path.
func TestCleanerMakesForegroundEvictionsClean(t *testing.T) {
	_, l, p, st := newEnvCfg(Config{Capacity: 2, Shards: 1})
	for id := storage.PageID(2); id <= 3; id++ {
		f, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		update(t, p, l, f, byte(id))
		p.Unfix(f)
	}
	for p.CleanPass(DefaultCleanerBatch) > 0 {
	}

	f, err := p.Fix(9) // forces an eviction in the full shard
	if err != nil {
		t.Fatal(err)
	}
	p.Unfix(f)
	if st.PageEvicted.Load() == 0 {
		t.Fatal("fix of page 9 did not evict from the full pool")
	}
	if st.EvictionsDirty.Load() != 0 {
		t.Fatal("foreground eviction stole a dirty page despite the clean pass")
	}
}

// TestStartStopCleanerLifecycle covers idempotence and the crash fence:
// StartCleaner twice runs one loop, StopCleaner twice is safe, and Crash
// stops the cleaner synchronously.
func TestStartStopCleanerLifecycle(t *testing.T) {
	_, l, p, st := newEnvCfg(Config{Capacity: 8, Shards: 2})
	p.StartCleaner(time.Millisecond, 4)
	p.StartCleaner(time.Millisecond, 4) // no-op: already running
	p.StartCleaner(0, 4)                // no-op: non-positive interval

	f, err := p.Fix(5)
	if err != nil {
		t.Fatal(err)
	}
	update(t, p, l, f, 0x55)
	p.Unfix(f)
	deadline := time.Now().Add(2 * time.Second)
	for len(p.DPT()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("background cleaner never flushed the dirty frame")
		}
		time.Sleep(time.Millisecond)
	}
	if st.CleanerWrites.Load() == 0 {
		t.Fatal("no cleaner writes counted")
	}

	p.StopCleaner()
	p.StopCleaner() // idempotent
	passes := st.CleanerPasses.Load()
	time.Sleep(5 * time.Millisecond)
	if st.CleanerPasses.Load() != passes {
		t.Fatal("cleaner still running after StopCleaner")
	}

	// Crash() on a pool with a live cleaner stops it before dropping frames.
	p.StartCleaner(time.Millisecond, 4)
	p.Crash()
	passes = st.CleanerPasses.Load()
	time.Sleep(5 * time.Millisecond)
	if st.CleanerPasses.Load() != passes {
		t.Fatal("cleaner survived Crash")
	}
	if p.NumBuffered() != 0 {
		t.Fatal("frames survived Crash")
	}
}

// TestCleanerConcurrentWithTraffic races the cleaner against foreground
// updates: no pin leaks, no lost updates, and the pool drains clean.
func TestCleanerConcurrentWithTraffic(t *testing.T) {
	_, l, p, _ := newEnvCfg(Config{Capacity: 16, Shards: 4})
	p.StartCleaner(100*time.Microsecond, 4)
	defer p.StopCleaner()

	iters := 400
	if testing.Short() {
		iters = 150
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := storage.PageID((g*13+i*5)%24 + 2)
				f, err := p.Fix(id)
				if err != nil {
					continue // exhaustion under churn is acceptable here
				}
				update(t, p, l, f, byte(id))
				p.Unfix(f)
			}
		}(g)
	}
	wg.Wait()
	p.StopCleaner()
	if pinned := p.PinnedPages(); len(pinned) != 0 {
		t.Fatalf("pins leaked: %v", pinned)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll after cleaner traffic: %v", err)
	}
	if len(p.DPT()) != 0 {
		t.Fatal("DPT not empty after quiesce")
	}
}
