package buffer

import (
	"errors"
	"sync"
	"testing"

	"ariesim/internal/latch"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/wal"
)

func newEnv(capacity int) (*storage.Disk, *wal.Log, *Pool, *trace.Stats) {
	st := &trace.Stats{}
	d := storage.NewDisk(512)
	l := wal.NewLog(st)
	return d, l, NewPool(d, l, capacity, st), st
}

// newEnvCfg builds a pool with an explicit shard configuration, for tests
// whose eviction-order assertions need a single deterministic shard.
func newEnvCfg(cfg Config) (*storage.Disk, *wal.Log, *Pool, *trace.Stats) {
	st := &trace.Stats{}
	d := storage.NewDisk(512)
	l := wal.NewLog(st)
	return d, l, NewPoolWith(d, l, cfg, st), st
}

// update simulates a logged page mutation under the proper discipline.
func update(t *testing.T, p *Pool, l *wal.Log, f *Frame, fill byte) wal.LSN {
	t.Helper()
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)
	lsn := l.Append(&wal.Record{Type: wal.RecUpdate, TxID: 1, Page: f.ID(), Op: wal.OpIdxSetBits, Payload: []byte{fill}})
	f.Page.Bytes()[storage.DefaultPageSize%512+100] = fill // arbitrary body byte
	f.Page.SetLSN(uint64(lsn))
	p.MarkDirty(f, lsn)
	return lsn
}

func TestFixMissReadsDisk(t *testing.T) {
	d, _, p, st := newEnv(4)
	content := make([]byte, 512)
	content[100] = 0xEE
	_ = d.Write(7, content)
	f, err := p.Fix(7)
	if err != nil {
		t.Fatal(err)
	}
	if f.Page.Bytes()[100] != 0xEE {
		t.Fatal("fix did not read disk content")
	}
	p.Unfix(f)
	if st.PageMisses.Load() != 1 || st.PageFixes.Load() != 1 {
		t.Fatalf("stats: misses=%d fixes=%d", st.PageMisses.Load(), st.PageFixes.Load())
	}
	// Second fix hits.
	f2, _ := p.Fix(7)
	p.Unfix(f2)
	if st.PageMisses.Load() != 1 {
		t.Fatal("second fix missed")
	}
}

func TestFixInvalidPage(t *testing.T) {
	_, _, p, _ := newEnv(2)
	if _, err := p.Fix(storage.InvalidPageID); err == nil {
		t.Fatal("fix of page 0 succeeded")
	}
}

func TestUnfixWithoutPinPanics(t *testing.T) {
	_, _, p, _ := newEnv(2)
	f, _ := p.Fix(3)
	p.Unfix(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double unfix did not panic")
		}
	}()
	p.Unfix(f)
}

func TestEvictionRespectsWAL(t *testing.T) {
	d, l, p, _ := newEnv(1)
	f, _ := p.Fix(5)
	lsn := update(t, p, l, f, 0xAA)
	p.Unfix(f)
	if l.StableLSN() >= lsn {
		t.Fatal("log forced prematurely")
	}
	// Fixing another page evicts page 5; the steal must force the log.
	f2, err := p.Fix(6)
	if err != nil {
		t.Fatal(err)
	}
	p.Unfix(f2)
	if l.StableLSN() < lsn {
		t.Fatalf("WAL violated: stable=%d, page LSN=%d written to disk", l.StableLSN(), lsn)
	}
	buf := make([]byte, 512)
	_ = d.Read(5, buf)
	if storage.PageFromBytes(buf).LSN() != uint64(lsn) {
		t.Fatal("evicted page content not on disk")
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	_, _, p, _ := newEnv(1)
	f, _ := p.Fix(5)
	if _, err := p.Fix(6); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("want ErrPoolExhausted, got %v", err)
	}
	p.Unfix(f)
	f2, err := p.Fix(6)
	if err != nil {
		t.Fatal(err)
	}
	p.Unfix(f2)
}

// TestClockSweepSecondChance pins down the per-shard clock replacement on
// a single two-frame shard. Slot assignment pops the free list from the
// back (page 10 → slot 1, page 11 → slot 0) and the hand starts at slot 0,
// which makes every sweep below deterministic.
func TestClockSweepSecondChance(t *testing.T) {
	d, l, p, st := newEnvCfg(Config{Capacity: 2, Shards: 1})
	fa, _ := p.Fix(10)
	lsn := update(t, p, l, fa, 1) // page 10 is dirty
	p.Unfix(fa)
	fb, _ := p.Fix(11)
	p.Unfix(fb)

	// First eviction: both frames carry a reference bit, so the sweep
	// clears 11 (slot 0) and 10 (slot 1), laps back, and evicts 11 — the
	// first cleared frame the hand re-reaches. The dirty page 10 survives.
	fc, _ := p.Fix(12)
	p.Unfix(fc)
	if st.PageEvicted.Load() != 1 {
		t.Fatalf("evictions = %d, want 1", st.PageEvicted.Load())
	}
	if st.EvictionsDirty.Load() != 0 {
		t.Fatal("first eviction should have found the clean victim")
	}
	misses := st.PageMisses.Load()
	fa2, _ := p.Fix(10)
	p.Unfix(fa2) // hit: 10 resident, and its reference bit is set again
	if st.PageMisses.Load() != misses {
		t.Fatal("clock evicted page 10 instead of the clean unreferenced 11")
	}

	// Second eviction: both survivors carry reference bits again, but the
	// sweep's clean-preference pass takes the clean 12 and leaves the dirty
	// 10 resident, deferring the steal writeback.
	fd, _ := p.Fix(13)
	p.Unfix(fd)
	if st.PageEvicted.Load() != 2 {
		t.Fatalf("evictions = %d, want 2", st.PageEvicted.Load())
	}
	if st.EvictionsDirty.Load() != 0 {
		t.Fatal("sweep stole the dirty 10 with the clean 12 available")
	}
	misses = st.PageMisses.Load()
	fa3, _ := p.Fix(10)
	p.Unfix(fa3)
	if st.PageMisses.Load() != misses {
		t.Fatal("clean-preference pass evicted the dirty 10 instead of 12")
	}

	// Third eviction: dirty 13 too, so every frame is dirty and the sweep
	// must fall back to a steal — page 10 at the hand — which forces the
	// WAL through the page's LSN before the write.
	fd, _ = p.Fix(13)
	update(t, p, l, fd, 3)
	p.Unfix(fd)
	fe, _ := p.Fix(14)
	p.Unfix(fe)
	if st.EvictionsDirty.Load() != 1 {
		t.Fatalf("EvictionsDirty = %d, want 1", st.EvictionsDirty.Load())
	}
	if l.StableLSN() < lsn {
		t.Fatalf("WAL violated: stable=%d < page LSN %d", l.StableLSN(), lsn)
	}
	buf := make([]byte, 512)
	_ = d.Read(10, buf)
	if storage.PageFromBytes(buf).LSN() != uint64(lsn) {
		t.Fatal("dirty victim's content not written back")
	}
	// 13 kept its residency (its reference bit shielded it).
	misses = st.PageMisses.Load()
	fd2, _ := p.Fix(13)
	p.Unfix(fd2)
	if st.PageMisses.Load() != misses {
		t.Fatal("page 13 lost residency despite its reference bit")
	}
}

func TestDPTTracksRecLSN(t *testing.T) {
	_, l, p, _ := newEnv(4)
	f, _ := p.Fix(5)
	first := update(t, p, l, f, 1)
	second := update(t, p, l, f, 2)
	if second <= first {
		t.Fatal("LSNs not increasing")
	}
	dpt := p.DPT()
	if len(dpt) != 1 || dpt[0].Page != 5 || dpt[0].RecLSN != first {
		t.Fatalf("DPT = %+v, want page 5 recLSN %d", dpt, first)
	}
	p.Unfix(f)
	if err := p.FlushPage(5); err != nil {
		t.Fatal(err)
	}
	if len(p.DPT()) != 0 {
		t.Fatal("DPT entry survived flush")
	}
}

func TestFlushAllAndCrash(t *testing.T) {
	d, l, p, _ := newEnv(8)
	for id := storage.PageID(2); id <= 5; id++ {
		f, _ := p.Fix(id)
		update(t, p, l, f, byte(id))
		p.Unfix(f)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(p.DPT()) != 0 {
		t.Fatal("dirty frames survived FlushAll")
	}
	if d.NumPages() != 4 {
		t.Fatalf("disk pages = %d, want 4", d.NumPages())
	}
	// Dirty a page, crash, verify the update is lost from the pool.
	f, _ := p.Fix(2)
	update(t, p, l, f, 0x77)
	p.Unfix(f)
	p.Crash()
	if p.NumBuffered() != 0 {
		t.Fatal("frames survived crash")
	}
	f2, _ := p.Fix(2)
	if f2.Page.Bytes()[100] == 0x77 {
		t.Fatal("unflushed update survived crash in pool")
	}
	p.Unfix(f2)
}

func TestPinnedPagesReport(t *testing.T) {
	_, _, p, _ := newEnv(4)
	f, _ := p.Fix(9)
	got := p.PinnedPages()
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("PinnedPages = %v", got)
	}
	p.Unfix(f)
	if len(p.PinnedPages()) != 0 {
		t.Fatal("pin leak reported")
	}
}

func TestConcurrentFixUnfix(t *testing.T) {
	_, l, p, _ := newEnv(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				id := storage.PageID(i%12 + 2)
				f, err := p.Fix(id)
				if err != nil {
					if errors.Is(err, ErrPoolExhausted) {
						continue
					}
					t.Errorf("fix: %v", err)
					return
				}
				if i%5 == 0 {
					f.Latch.Acquire(latch.X)
					lsn := l.Append(&wal.Record{Type: wal.RecUpdate, TxID: wal.TxID(g), Page: id, Op: wal.OpIdxSetBits})
					f.Page.SetLSN(uint64(lsn))
					p.MarkDirty(f, lsn)
					f.Latch.Release(latch.X)
				} else {
					f.Latch.Acquire(latch.S)
					_ = f.Page.LSN()
					f.Latch.Release(latch.S)
				}
				p.Unfix(f)
			}
		}(g)
	}
	wg.Wait()
	if got := p.PinnedPages(); len(got) != 0 {
		t.Fatalf("pins leaked: %v", got)
	}
}
