// Package buffer implements the buffer pool: the volatile page cache
// between the index/record managers and the simulated disk.
//
// It enforces the two policies ARIES is designed around (paper §1.2):
//
//   - steal: a dirty page may be written to disk before its updating
//     transaction commits — but only after the log is forced up to the
//     page's page_LSN (the write-ahead-logging protocol);
//   - no-force: commit does not flush pages; it only forces the log.
//
// Frames carry the per-page latch (physical consistency) and the dirty
// page table entry (recLSN) that restart analysis/redo consume. Crash()
// discards every frame, modeling loss of volatile state.
//
// The frame table is hash-sharded (Fibonacci multiplicative mixing, the
// same idiom as the lock manager) with per-shard clock-sweep replacement,
// so concurrent fixes of different pages touch independent mutexes. Three
// properties keep I/O out of every shard lock:
//
//   - miss reads run on a frame inserted in "loading" state: the reading
//     fixer holds only a pin, concurrent fixers of the same page park on
//     the frame's ready channel (exactly one disk read per miss storm),
//     and fixers of other pages proceed through the shard untouched;
//   - steal writebacks pin the victim and write outside the shard lock;
//     a fixer arriving mid-writeback simply re-pins the (still resident)
//     frame and the eviction is abandoned;
//   - Unfix and MarkDirty never take a shard lock at all: pin counts are
//     atomic and the dirty/recLSN pair sits under a per-frame mutex.
//
// An optional background page cleaner (cleaner.go) flushes dirty frames
// just ahead of the clock hand so foreground evictions almost always find
// clean victims and checkpoint DPT snapshots stay small.
package buffer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ariesim/internal/latch"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/wal"
)

// ErrPoolExhausted reports that every candidate frame stayed pinned across
// the bounded eviction retries; the pool cannot honor a new Fix. Engines
// size pools to their working set, so hitting this indicates a pin leak or
// a deliberately tiny test pool. Transient full-pin episodes are absorbed
// by Fix's wait-and-retry (counted as EvictionStalls) before this surfaces.
var ErrPoolExhausted = errors.New("buffer: all frames pinned")

// maxStallRetries caps the wait-and-retry rounds a Fix spends on a shard
// whose every frame is transiently pinned (concurrent traversals plus a
// cleaner batch can pin a small shard wall-to-wall for a few I/O times).
// The budget is deliberately larger than the I/O retry budget: with capped
// backoff it rides out several milliseconds of full-pin before surfacing
// ErrPoolExhausted, which then almost certainly means a pin leak or a pool
// far too small for the traversal footprint.
const maxStallRetries = 20

// maxStallBackoff caps the per-round stall wait.
const maxStallBackoff = 400 * time.Microsecond

// maxIORetries caps how many times a transient disk error is retried
// before the pool gives up and surfaces it. The same bound caps the
// full-pin eviction retries in Fix.
const maxIORetries = 6

// DefaultShards is the frame-table shard count NewPool uses: enough to
// spread a 16-worker benchmark's fixes across independent mutexes without
// bloating single-threaded engines. The effective count is clamped so
// every shard owns at least one frame.
const DefaultShards = 8

// minFramesPerShard is the smallest per-shard frame budget the default
// shard count will accept; tiny pools degrade toward a single shard so a
// burst of simultaneous pins cannot exhaust a sliver of the pool.
const minFramesPerShard = 8

// MediaRecoverer rebuilds a page on stable storage after its disk copy was
// found corrupt (checksum mismatch) or permanently unreadable. The engine
// installs one that restores from the latest image copy and rolls the page
// forward from the log.
type MediaRecoverer func(storage.PageID) error

// RecoveryHook is invoked after a miss read completes, before any parked
// fixer is released — the single-page redo point of online restart. The
// hook replays the page's log suffix in place and reports whether it
// changed the page (and from which LSN), so the pool can install the
// dirty/recLSN state itself; the hook must NOT call back into the pool
// (the serial-I/O path runs it under the shard lock). A hook error
// withdraws the frame exactly like a failed read: parked fixers fail fast
// and a later Fix retries from scratch. Because the hook rides the
// loading-frame protocol, N concurrent fixers of one page cost exactly
// one replay.
type RecoveryHook func(id storage.PageID, p *storage.Page) (dirty bool, recLSN wal.LSN, err error)

// Frame is a buffered page: the page bytes, the page latch, and the pin /
// dirty / recLSN bookkeeping. Callers mutate Page only while holding
// Latch in X mode and must log the change and call MarkDirty before
// releasing the latch.
type Frame struct {
	Page  *storage.Page
	Latch *latch.Latch

	id   storage.PageID
	slot int // index into the owning shard's slot array

	// pins is the pin count. Increments happen only under the owning
	// shard's mutex (so an evictor that observes zero under that mutex
	// knows no pin can appear); decrements are lock-free.
	pins atomic.Int64
	// ref is the clock-sweep reference bit, set on every Unfix.
	ref atomic.Bool

	// ready is closed when the frame's contents are valid (immediately for
	// hits; after the miss read for loaders). Fixers that arrive while the
	// read is in flight park here. loadErr is set before ready is closed
	// and is non-nil when the read failed (the frame was withdrawn).
	ready   chan struct{}
	loadErr error

	// mu guards dirty and recLSN, so MarkDirty and DPT snapshots never
	// touch a shard lock.
	mu     sync.Mutex
	dirty  bool
	recLSN wal.LSN
}

// ID returns the buffered page's ID.
func (f *Frame) ID() storage.PageID { return f.id }

// markClean transitions dirty→clean. Called under the frame's S latch
// right after a successful writeback, so no X-latch holder can interleave
// a MarkDirty between the write and the transition.
func (f *Frame) markClean() {
	f.mu.Lock()
	f.dirty = false
	f.recLSN = wal.NilLSN
	f.mu.Unlock()
}

func (f *Frame) isDirty() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dirty
}

// poolShard is one partition of the frame table: a page→frame map plus a
// fixed slot array the clock hand sweeps.
type poolShard struct {
	mu     sync.Mutex
	frames map[storage.PageID]*Frame
	slots  []*Frame // len == shard capacity; nil entries are free
	free   []int    // free slot indices
	hand   int      // clock hand position in slots
}

// removeLocked withdraws f from the shard. Identity-checked so a zombie
// loader unwinding after Crash rebuilt the shard can never evict a
// successor frame that reuses its page ID or slot.
func (s *poolShard) removeLocked(f *Frame) {
	if cur, ok := s.frames[f.id]; ok && cur == f {
		delete(s.frames, f.id)
	}
	if f.slot >= 0 && f.slot < len(s.slots) && s.slots[f.slot] == f {
		s.slots[f.slot] = nil
		s.free = append(s.free, f.slot)
	}
}

// Config configures a pool beyond the defaults.
type Config struct {
	// Capacity is the total frame budget across all shards (required).
	Capacity int
	// Shards is the frame-table shard count, rounded up to a power of two
	// and clamped so each shard holds at least one frame. Zero uses
	// DefaultShards; one reproduces a single-mutex pool.
	Shards int
	// SerialIO makes miss reads and eviction writebacks run while holding
	// the shard lock, and routes Unfix/MarkDirty through it — the
	// historical single-global-mutex pool, kept as an honest benchmark
	// baseline (pair it with Shards: 1).
	SerialIO bool
}

// Pool is the buffer pool.
type Pool struct {
	disk     *storage.Disk
	log      *wal.Log
	stats    *trace.Stats
	capacity int
	serialIO bool

	shards []poolShard
	mask   uint64

	recoverMu sync.RWMutex
	recover   MediaRecoverer

	hookMu  sync.RWMutex
	recHook RecoveryHook

	// Background page cleaner (see cleaner.go).
	cleanMu   sync.Mutex
	cleanStop chan struct{}
	cleanDone chan struct{}
}

// NewPool creates a pool of at most capacity frames over disk with
// DefaultShards shards, forcing log as the WAL protocol requires on steal.
func NewPool(disk *storage.Disk, log *wal.Log, capacity int, stats *trace.Stats) *Pool {
	return NewPoolWith(disk, log, Config{Capacity: capacity}, stats)
}

// NewPoolWith creates a pool with explicit sharding configuration.
func NewPoolWith(disk *storage.Disk, log *wal.Log, cfg Config, stats *trace.Stats) *Pool {
	if cfg.Capacity < 1 {
		panic(fmt.Sprintf("buffer: capacity %d", cfg.Capacity))
	}
	n := 1
	if cfg.Shards > 0 {
		for n < cfg.Shards {
			n <<= 1
		}
		for n > cfg.Capacity {
			n >>= 1
		}
	} else {
		// Default sharding backs off on small pools: a shard with fewer
		// than minFramesPerShard frames can be exhausted by one
		// traversal's simultaneous pins, which a shared pool absorbs.
		n = DefaultShards
		for n > 1 && cfg.Capacity < n*minFramesPerShard {
			n >>= 1
		}
	}
	p := &Pool{
		disk:     disk,
		log:      log,
		stats:    stats,
		capacity: cfg.Capacity,
		serialIO: cfg.SerialIO,
		shards:   make([]poolShard, n),
		mask:     uint64(n - 1),
	}
	base, extra := cfg.Capacity/n, cfg.Capacity%n
	for i := range p.shards {
		c := base
		if i < extra {
			c++
		}
		s := &p.shards[i]
		s.frames = make(map[storage.PageID]*Frame, c)
		s.slots = make([]*Frame, c)
		s.free = make([]int, c)
		for j := range s.free {
			s.free[j] = j
		}
	}
	return p
}

// ShardHash mixes a page ID with the Fibonacci multiplicative constant
// (the same idiom as the lock manager) so adjacent page IDs spread evenly
// across any power-of-two or modulo partitioning. Exported so other
// page-partitioned fan-outs — notably parallel restart redo — divide pages
// exactly the way the pool does.
func ShardHash(id storage.PageID) uint64 {
	h := uint64(id) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// shardOf returns the shard owning page id.
func (p *Pool) shardOf(id storage.PageID) *poolShard {
	return &p.shards[ShardHash(id)&p.mask]
}

// NumShards returns the effective shard count (power of two, ≤ capacity).
func (p *Pool) NumShards() int { return len(p.shards) }

// PageSize returns the underlying disk's page size.
func (p *Pool) PageSize() int { return p.disk.PageSize() }

// SetMediaRecoverer installs the self-healing hook invoked when a page
// read fails its checksum or hits a permanent device error.
func (p *Pool) SetMediaRecoverer(r MediaRecoverer) {
	p.recoverMu.Lock()
	p.recover = r
	p.recoverMu.Unlock()
}

func (p *Pool) mediaRecoverer() MediaRecoverer {
	p.recoverMu.RLock()
	defer p.recoverMu.RUnlock()
	return p.recover
}

// SetRecoveryHook installs (or, with nil, removes) the on-demand redo hook
// run on every miss read. Installed before the engine opens for business
// and removed once the background drain has emptied the recovery plan.
func (p *Pool) SetRecoveryHook(h RecoveryHook) {
	p.hookMu.Lock()
	p.recHook = h
	p.hookMu.Unlock()
}

func (p *Pool) recoveryHook() RecoveryHook {
	p.hookMu.RLock()
	defer p.hookMu.RUnlock()
	return p.recHook
}

// runRecoveryHook applies the installed hook (if any) to a freshly read
// frame, installing the resulting dirty/recLSN state directly — MarkDirty
// would deadlock on the serial-I/O path, which calls this under the shard
// lock. No latch is needed: the frame is still loading, so no other fixer
// can hold it.
func (p *Pool) runRecoveryHook(f *Frame) error {
	hook := p.recoveryHook()
	if hook == nil {
		return nil
	}
	dirty, recLSN, err := hook(f.id, f.Page)
	if err != nil {
		return err
	}
	if dirty {
		f.mu.Lock()
		if !f.dirty {
			f.dirty = true
			f.recLSN = recLSN
		}
		f.mu.Unlock()
	}
	return nil
}

// backoff is the capped linear retry delay for transient I/O errors. Real
// engines wait out controller hiccups; the simulator keeps the shape (and
// the retry accounting) at microsecond scale.
func backoff(attempt int) time.Duration {
	return time.Duration(attempt+1) * 50 * time.Microsecond
}

// readPage reads page id with graceful degradation: transient errors are
// retried with capped backoff, and checksum or permanent failures trigger
// one automatic media recovery before the read is retried. Anything the
// pool cannot heal is returned to the caller.
func (p *Pool) readPage(id storage.PageID, buf []byte) error {
	recoveries := 0
	for attempt := 0; ; attempt++ {
		err := p.disk.Read(id, buf)
		if err == nil {
			return nil
		}
		switch {
		case errors.Is(err, storage.ErrTransientIO):
			if attempt >= maxIORetries {
				return err
			}
			if p.stats != nil {
				p.stats.IORetries.Add(1)
			}
			time.Sleep(backoff(attempt))
		case errors.Is(err, storage.ErrChecksum) || errors.Is(err, storage.ErrPermanentIO):
			if p.stats != nil {
				p.stats.CorruptPages.Add(1)
			}
			// Recovery's own rebuild write may be torn or flipped by the
			// same faulty device, so allow a few rounds; a fault injector
			// that caps consecutive faults guarantees convergence.
			recover := p.mediaRecoverer()
			if recover == nil || recoveries >= maxIORetries {
				return err
			}
			recoveries++
			if rerr := recover(id); rerr != nil {
				return fmt.Errorf("buffer: media recovery of page %d failed: %w", id, rerr)
			}
		default:
			return err
		}
	}
}

// writePage writes page id, retrying transient device errors with capped
// backoff. Non-transient errors surface immediately.
func (p *Pool) writePage(id storage.PageID, buf []byte) error {
	for attempt := 0; ; attempt++ {
		err := p.disk.Write(id, buf)
		if err == nil {
			return nil
		}
		if !errors.Is(err, storage.ErrTransientIO) || attempt >= maxIORetries {
			return err
		}
		if p.stats != nil {
			p.stats.IORetries.Add(1)
		}
		time.Sleep(backoff(attempt))
	}
}

// Fix pins page id in the pool, reading it from disk on a miss (a page
// never written reads as zeroes, which the caller will Format). The caller
// must Unfix the frame, and must latch Frame.Latch before touching bytes.
//
// Only the shard owning id is locked, and never across I/O: a miss read
// runs with the shard free, so fixers of other pages in the same shard
// proceed, and concurrent fixers of the same page park on the frame and
// share the single read.
func (p *Pool) Fix(id storage.PageID) (*Frame, error) {
	if id == storage.InvalidPageID {
		return nil, errors.New("buffer: fix of invalid page 0")
	}
	if p.stats != nil {
		p.stats.PageFixes.Add(1)
	}
	s := p.shardOf(id)
	stalls := 0
	var f *Frame
	for {
		s.mu.Lock()
		if hit, ok := s.frames[id]; ok {
			hit.pins.Add(1)
			hit.ref.Store(true)
			s.mu.Unlock()
			// Park until the frame's read (if any) completes. Closed
			// channels make the hit path a single atomic load.
			select {
			case <-hit.ready:
			default:
				if p.stats != nil {
					p.stats.FixParks.Add(1)
				}
				<-hit.ready
			}
			if hit.loadErr != nil {
				// The loader withdrew the frame; surface its error.
				hit.pins.Add(-1)
				return nil, hit.loadErr
			}
			return hit, nil
		}
		if len(s.free) > 0 {
			// Claim a slot while still holding the shard lock.
			if p.stats != nil {
				p.stats.PageMisses.Add(1)
			}
			f = &Frame{
				Page:  storage.NewPage(p.disk.PageSize()),
				Latch: latch.New(p.stats),
				id:    id,
				ready: make(chan struct{}),
			}
			f.pins.Store(1)
			f.slot = s.free[len(s.free)-1]
			s.free = s.free[:len(s.free)-1]
			s.slots[f.slot] = f
			s.frames[id] = f
			break
		}
		err := p.evictLocked(s)
		s.mu.Unlock()
		if err == nil {
			continue // a slot was freed; re-check the map (it may have changed)
		}
		if errors.Is(err, ErrPoolExhausted) && stalls < maxStallRetries {
			// Transient full-pin: every candidate was pinned at this
			// instant. Wait out the pin holders and retry instead of
			// failing the caller.
			if p.stats != nil {
				p.stats.EvictionStalls.Add(1)
			}
			wait := backoff(stalls)
			if wait > maxStallBackoff {
				wait = maxStallBackoff
			}
			time.Sleep(wait)
			stalls++
			continue
		}
		return nil, err
	}

	if p.serialIO {
		// Baseline mode: the read happens under the shard lock, exactly as
		// the historical single-mutex pool did.
		err := p.readPage(id, f.Page.Bytes())
		if err == nil {
			err = p.runRecoveryHook(f)
		}
		if err != nil {
			s.removeLocked(f)
		}
		close(f.ready)
		s.mu.Unlock()
		if err != nil {
			f.pins.Add(-1)
			f.loadErr = err
			return nil, err
		}
		return f, nil
	}

	s.mu.Unlock()
	err := p.readPage(id, f.Page.Bytes())
	if err == nil {
		err = p.runRecoveryHook(f)
	}
	if err != nil {
		// Withdraw the frame so parked fixers fail fast and a later Fix
		// retries the read from scratch.
		f.loadErr = err
		s.mu.Lock()
		s.removeLocked(f)
		s.mu.Unlock()
		close(f.ready)
		f.pins.Add(-1)
		return nil, err
	}
	close(f.ready)
	return f, nil
}

// Unfix releases one pin on the frame and grants it a clock second chance.
// Lock-free: it must never contend with other pages' fixes.
func (p *Pool) Unfix(f *Frame) {
	if p.serialIO {
		s := p.shardOf(f.id)
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if f.pins.Add(-1) < 0 {
		panic(fmt.Sprintf("buffer: unfix of unpinned page %d", f.id))
	}
	f.ref.Store(true)
}

// MarkDirty records that the holder of the frame's X latch has applied the
// update logged at lsn. On a clean→dirty transition the update's LSN
// becomes the frame's recLSN (the dirty page table entry ARIES redo
// starts from). Touches only the frame's own mutex.
func (p *Pool) MarkDirty(f *Frame, lsn wal.LSN) {
	if p.serialIO {
		s := p.shardOf(f.id)
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	f.mu.Lock()
	if !f.dirty {
		f.dirty = true
		f.recLSN = lsn
	}
	f.mu.Unlock()
}

// evictLocked frees one slot in s via a clock sweep. Called with s.mu
// held; returns with it held. The sweep skips pinned frames and clears
// reference bits (second chance), and runs in two passes: the first
// accepts only CLEAN victims, so a dirty frame is stolen only when no
// clean unpinned frame exists in the shard — with the page cleaner
// running, the foreground Fix path almost never pays a steal writeback.
// A clean victim is dropped in place; a dirty one (second pass) is pinned
// and written back with the shard lock RELEASED, so fixes of other pages
// in the shard proceed during the I/O. ErrPoolExhausted means every frame
// stayed pinned across all passes.
func (p *Pool) evictLocked(s *poolShard) error {
	n := len(s.slots)
	for _, allowDirty := range [2]bool{false, true} {
		for i := 0; i < 2*n; i++ {
			f := s.slots[s.hand]
			s.hand = (s.hand + 1) % n
			if f == nil {
				return nil // a concurrent eviction already freed a slot
			}
			if f.pins.Load() != 0 {
				continue
			}
			if f.ref.Swap(false) {
				continue // second chance
			}
			if !f.isDirty() {
				s.removeLocked(f)
				if p.stats != nil {
					p.stats.PageEvicted.Add(1)
				}
				return nil
			}
			if !allowDirty {
				continue // clean-preference pass: leave the steal for later
			}
			// Dirty victim: pin it (under s.mu, so the zero pin count we saw
			// cannot change concurrently) and do the steal outside the lock.
			f.pins.Add(1)
			if p.stats != nil {
				p.stats.EvictionsDirty.Add(1)
			}
			if p.serialIO {
				err := p.writeBack(f)
				f.pins.Add(-1)
				if err != nil {
					return err
				}
				s.removeLocked(f)
				if p.stats != nil {
					p.stats.PageEvicted.Add(1)
				}
				return nil
			}
			s.mu.Unlock()
			err := p.writeBack(f)
			s.mu.Lock()
			f.pins.Add(-1)
			if err != nil {
				// The frame stays resident, dirty, and in the DPT: nothing is
				// lost, and a later evict or flush retries the write.
				return err
			}
			if f.pins.Load() == 0 && !f.isDirty() && s.slots[f.slot] == f {
				s.removeLocked(f)
				if p.stats != nil {
					p.stats.PageEvicted.Add(1)
				}
				return nil
			}
			// A fixer re-pinned (or re-dirtied) the frame mid-writeback: the
			// eviction is abandoned — the page is hot — and the sweep goes on.
		}
	}
	return ErrPoolExhausted
}

// writeBack forces the log to the frame's page_LSN and writes the page,
// transitioning it clean — the steal path. The caller must hold a pin.
// The S latch spans the LSN read, the write, and the clean transition, so
// no X-latch holder can slip an update between the write and markClean.
// A frame found already clean is a no-op.
func (p *Pool) writeBack(f *Frame) error {
	f.Latch.Acquire(latch.S)
	defer f.Latch.Release(latch.S)
	if !f.isDirty() {
		return nil
	}
	// Steal: WAL demands the log be stable up to the page's LSN before the
	// page replaces its disk version. This goes through the group-commit
	// path, so an eviction storm coalesces with in-flight commit forces
	// instead of each paying a separate device flush.
	p.log.Force(wal.LSN(f.Page.LSN()))
	if err := p.writePage(f.id, f.Page.Bytes()); err != nil {
		return err
	}
	f.markClean()
	if p.stats != nil {
		p.stats.PageWrites.Add(1)
	}
	return nil
}

// FlushPage forces page id to disk if buffered and dirty (media recovery
// and tests; ordinary commits never flush). It briefly S-latches the frame
// for a consistent image.
func (p *Pool) FlushPage(id storage.PageID) error {
	s := p.shardOf(id)
	s.mu.Lock()
	f, ok := s.frames[id]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	f.pins.Add(1) // hold the frame across the writeback
	s.mu.Unlock()
	<-f.ready
	var err error
	if f.loadErr == nil {
		err = p.writeBack(f)
	}
	f.pins.Add(-1)
	return err
}

// FlushAll flushes every dirty frame (quiesce points and image copies).
// Every dirty page is attempted even after a failure; the errors are
// joined, so one bad page no longer blocks the flush of all later pages.
func (p *Pool) FlushAll() error {
	var ids []storage.PageID
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for id, f := range s.frames {
			if f.isDirty() {
				ids = append(ids, id)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var errs []error
	for _, id := range ids {
		if err := p.FlushPage(id); err != nil {
			errs = append(errs, fmt.Errorf("buffer: flush page %d: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// DPT snapshots the dirty page table for a fuzzy checkpoint: every dirty
// frame with its recLSN.
func (p *Pool) DPT() []wal.DPTEntry {
	var out []wal.DPTEntry
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for id, f := range s.frames {
			f.mu.Lock()
			if f.dirty {
				out = append(out, wal.DPTEntry{Page: id, RecLSN: f.recLSN})
			}
			f.mu.Unlock()
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

// Crash discards every frame without writing anything: the volatile half
// of the failure model. Dirty pages whose updates were not stolen to disk
// are simply lost; restart redo brings them back from the log. The page
// cleaner is stopped first and waited for, so no cleaner write can land
// after Crash returns (the crash fence); the pool itself remains usable
// (restart recovery refills it).
func (p *Pool) Crash() {
	p.StopCleaner()
	p.SetRecoveryHook(nil) // any pending recovery plan died with the volatile state
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		s.frames = make(map[storage.PageID]*Frame)
		s.free = s.free[:0]
		for j := range s.slots {
			s.slots[j] = nil
			s.free = append(s.free, j)
		}
		s.hand = 0
		s.mu.Unlock()
	}
}

// Contains reports whether page id is currently resident (possibly still
// loading). Advisory: the answer can be stale by the time the caller acts
// on it, which is fine for prefetch planning.
func (p *Pool) Contains(id storage.PageID) bool {
	s := p.shardOf(id)
	s.mu.Lock()
	_, ok := s.frames[id]
	s.mu.Unlock()
	return ok
}

// Prefetch fixes and immediately unfixes every non-resident page in ids,
// issuing the miss reads concurrently so they overlap on the device queue.
// It is purely advisory: errors are swallowed (the demand Fix will surface
// them with full retry/recovery handling) and resident pages are skipped.
// Returns the number of pages actually fetched. Serial-I/O baseline pools
// do not prefetch — overlap is the whole point.
func (p *Pool) Prefetch(ids []storage.PageID) int {
	if p.serialIO || len(ids) == 0 {
		return 0
	}
	var fetched atomic.Int64
	var wg sync.WaitGroup
	for _, id := range ids {
		if id == storage.InvalidPageID || p.Contains(id) {
			continue
		}
		wg.Add(1)
		go func(id storage.PageID) {
			defer wg.Done()
			f, err := p.Fix(id)
			if err != nil {
				return
			}
			p.Unfix(f)
			fetched.Add(1)
			if p.stats != nil {
				p.stats.PagesPrefetched.Add(1)
			}
		}(id)
	}
	wg.Wait()
	return int(fetched.Load())
}

// NumBuffered returns the number of resident frames.
func (p *Pool) NumBuffered() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		n += len(s.frames)
		s.mu.Unlock()
	}
	return n
}

// PinnedPages returns IDs of currently pinned frames (leak assertions).
func (p *Pool) PinnedPages() []storage.PageID {
	var out []storage.PageID
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for id, f := range s.frames {
			if f.pins.Load() > 0 {
				out = append(out, id)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
