// Package buffer implements the buffer pool: the volatile page cache
// between the index/record managers and the simulated disk.
//
// It enforces the two policies ARIES is designed around (paper §1.2):
//
//   - steal: a dirty page may be written to disk before its updating
//     transaction commits — but only after the log is forced up to the
//     page's page_LSN (the write-ahead-logging protocol);
//   - no-force: commit does not flush pages; it only forces the log.
//
// Frames carry the per-page latch (physical consistency) and the dirty
// page table entry (recLSN) that restart analysis/redo consume. Crash()
// discards every frame, modeling loss of volatile state.
package buffer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ariesim/internal/latch"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/wal"
)

// ErrPoolExhausted reports that every frame is pinned; the pool cannot
// honor a new Fix. Engines size pools to their working set, so hitting
// this indicates a pin leak or a deliberately tiny test pool.
var ErrPoolExhausted = errors.New("buffer: all frames pinned")

// maxIORetries caps how many times a transient disk error is retried
// before the pool gives up and surfaces it.
const maxIORetries = 6

// MediaRecoverer rebuilds a page on stable storage after its disk copy was
// found corrupt (checksum mismatch) or permanently unreadable. The engine
// installs one that restores from the latest image copy and rolls the page
// forward from the log.
type MediaRecoverer func(storage.PageID) error

// Frame is a buffered page: the page bytes, the page latch, and the pin /
// dirty / recLSN bookkeeping. Callers mutate Page only while holding
// Latch in X mode and must log the change and call MarkDirty before
// releasing the latch.
type Frame struct {
	Page  *storage.Page
	Latch *latch.Latch

	id      storage.PageID
	pins    int
	dirty   bool
	recLSN  wal.LSN
	lastUse uint64
}

// ID returns the buffered page's ID.
func (f *Frame) ID() storage.PageID { return f.id }

// Pool is the buffer pool.
type Pool struct {
	mu       sync.Mutex
	disk     *storage.Disk
	log      *wal.Log
	frames   map[storage.PageID]*Frame
	capacity int
	tick     uint64
	recover  MediaRecoverer
	stats    *trace.Stats
}

// NewPool creates a pool of at most capacity frames over disk, forcing log
// as the WAL protocol requires on steal.
func NewPool(disk *storage.Disk, log *wal.Log, capacity int, stats *trace.Stats) *Pool {
	if capacity < 1 {
		panic(fmt.Sprintf("buffer: capacity %d", capacity))
	}
	return &Pool{
		disk:     disk,
		log:      log,
		frames:   make(map[storage.PageID]*Frame),
		capacity: capacity,
		stats:    stats,
	}
}

// PageSize returns the underlying disk's page size.
func (p *Pool) PageSize() int { return p.disk.PageSize() }

// SetMediaRecoverer installs the self-healing hook invoked when a page
// read fails its checksum or hits a permanent device error.
func (p *Pool) SetMediaRecoverer(r MediaRecoverer) {
	p.mu.Lock()
	p.recover = r
	p.mu.Unlock()
}

// backoff is the capped linear retry delay for transient I/O errors. Real
// engines wait out controller hiccups; the simulator keeps the shape (and
// the retry accounting) at microsecond scale.
func backoff(attempt int) time.Duration {
	return time.Duration(attempt+1) * 50 * time.Microsecond
}

// readPage reads page id with graceful degradation: transient errors are
// retried with capped backoff, and checksum or permanent failures trigger
// one automatic media recovery before the read is retried. Anything the
// pool cannot heal is returned to the caller.
func (p *Pool) readPage(id storage.PageID, buf []byte) error {
	recoveries := 0
	for attempt := 0; ; attempt++ {
		err := p.disk.Read(id, buf)
		if err == nil {
			return nil
		}
		switch {
		case errors.Is(err, storage.ErrTransientIO):
			if attempt >= maxIORetries {
				return err
			}
			if p.stats != nil {
				p.stats.IORetries.Add(1)
			}
			time.Sleep(backoff(attempt))
		case errors.Is(err, storage.ErrChecksum) || errors.Is(err, storage.ErrPermanentIO):
			if p.stats != nil {
				p.stats.CorruptPages.Add(1)
			}
			// Recovery's own rebuild write may be torn or flipped by the
			// same faulty device, so allow a few rounds; a fault injector
			// that caps consecutive faults guarantees convergence.
			if p.recover == nil || recoveries >= maxIORetries {
				return err
			}
			recoveries++
			if rerr := p.recover(id); rerr != nil {
				return fmt.Errorf("buffer: media recovery of page %d failed: %w", id, rerr)
			}
		default:
			return err
		}
	}
}

// writePage writes page id, retrying transient device errors with capped
// backoff. Non-transient errors surface immediately.
func (p *Pool) writePage(id storage.PageID, buf []byte) error {
	for attempt := 0; ; attempt++ {
		err := p.disk.Write(id, buf)
		if err == nil {
			return nil
		}
		if !errors.Is(err, storage.ErrTransientIO) || attempt >= maxIORetries {
			return err
		}
		if p.stats != nil {
			p.stats.IORetries.Add(1)
		}
		time.Sleep(backoff(attempt))
	}
}

// Fix pins page id in the pool, reading it from disk on a miss (a page
// never written reads as zeroes, which the caller will Format). The caller
// must Unfix the frame, and must latch Frame.Latch before touching bytes.
func (p *Pool) Fix(id storage.PageID) (*Frame, error) {
	if id == storage.InvalidPageID {
		return nil, errors.New("buffer: fix of invalid page 0")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stats != nil {
		p.stats.PageFixes.Add(1)
	}
	p.tick++
	if f, ok := p.frames[id]; ok {
		f.pins++
		f.lastUse = p.tick
		return f, nil
	}
	if p.stats != nil {
		p.stats.PageMisses.Add(1)
	}
	if len(p.frames) >= p.capacity {
		if err := p.evictLocked(); err != nil {
			return nil, err
		}
	}
	pg := storage.NewPage(p.disk.PageSize())
	if err := p.readPage(id, pg.Bytes()); err != nil {
		return nil, err
	}
	f := &Frame{
		Page:    pg,
		Latch:   latch.New(p.stats),
		id:      id,
		pins:    1,
		lastUse: p.tick,
	}
	p.frames[id] = f
	return f, nil
}

// Unfix releases one pin on the frame.
func (p *Pool) Unfix(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unfix of unpinned page %d", f.id))
	}
	f.pins--
}

// MarkDirty records that the holder of the frame's X latch has applied the
// update logged at lsn. On a clean→dirty transition the update's LSN
// becomes the frame's recLSN (the dirty page table entry ARIES redo
// starts from).
func (p *Pool) MarkDirty(f *Frame, lsn wal.LSN) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !f.dirty {
		f.dirty = true
		f.recLSN = lsn
	}
}

// evictLocked writes back and drops the least-recently-used unpinned frame.
func (p *Pool) evictLocked() error {
	var victim *Frame
	for _, f := range p.frames {
		if f.pins > 0 {
			continue
		}
		if victim == nil || f.lastUse < victim.lastUse {
			victim = f
		}
	}
	if victim == nil {
		return ErrPoolExhausted
	}
	if victim.dirty {
		// Steal: WAL demands the log be stable up to the page's LSN
		// before the page replaces its disk version. This goes through the
		// group-commit path, so an eviction storm coalesces with in-flight
		// commit forces instead of each paying a separate device flush.
		p.log.Force(wal.LSN(victim.Page.LSN()))
		if err := p.writePage(victim.id, victim.Page.Bytes()); err != nil {
			// The frame stays resident, dirty, and in the DPT: nothing is
			// lost, and a later evict or flush retries the write.
			return err
		}
		if p.stats != nil {
			p.stats.PageWrites.Add(1)
		}
	}
	delete(p.frames, victim.id)
	if p.stats != nil {
		p.stats.PageEvicted.Add(1)
	}
	return nil
}

// FlushPage forces page id to disk if buffered and dirty (media recovery
// and tests; ordinary commits never flush). It briefly S-latches the frame
// for a consistent image.
func (p *Pool) FlushPage(id storage.PageID) error {
	p.mu.Lock()
	f, ok := p.frames[id]
	if !ok || !f.dirty {
		p.mu.Unlock()
		return nil
	}
	f.pins++ // hold the frame across the latch acquisition
	p.mu.Unlock()

	f.Latch.Acquire(latch.S)
	p.log.Force(wal.LSN(f.Page.LSN()))
	err := p.writePage(f.id, f.Page.Bytes())
	f.Latch.Release(latch.S)

	p.mu.Lock()
	f.pins--
	if err == nil {
		f.dirty = false
		f.recLSN = wal.NilLSN
	}
	p.mu.Unlock()
	if err == nil && p.stats != nil {
		p.stats.PageWrites.Add(1)
	}
	return err
}

// FlushAll flushes every dirty frame (quiesce points and image copies).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	ids := make([]storage.PageID, 0, len(p.frames))
	for id, f := range p.frames {
		if f.dirty {
			ids = append(ids, id)
		}
	}
	p.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := p.FlushPage(id); err != nil {
			return err
		}
	}
	return nil
}

// DPT snapshots the dirty page table for a fuzzy checkpoint: every dirty
// frame with its recLSN.
func (p *Pool) DPT() []wal.DPTEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []wal.DPTEntry
	for id, f := range p.frames {
		if f.dirty {
			out = append(out, wal.DPTEntry{Page: id, RecLSN: f.recLSN})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

// Crash discards every frame without writing anything: the volatile half
// of the failure model. Dirty pages whose updates were not stolen to disk
// are simply lost; restart redo brings them back from the log.
func (p *Pool) Crash() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[storage.PageID]*Frame)
}

// NumBuffered returns the number of resident frames.
func (p *Pool) NumBuffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// PinnedPages returns IDs of currently pinned frames (leak assertions).
func (p *Pool) PinnedPages() []storage.PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []storage.PageID
	for id, f := range p.frames {
		if f.pins > 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
