package buffer

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ariesim/internal/storage"
)

// scripted is a FaultInjector that replays queued fates, for tests that
// need an exact failure schedule rather than a probabilistic one.
type scripted struct {
	mu       sync.Mutex
	readErrs []error
	writes   []storage.WriteDecision
}

func (s *scripted) ReadFault(storage.PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.readErrs) == 0 {
		return nil
	}
	err := s.readErrs[0]
	s.readErrs = s.readErrs[1:]
	return err
}

func (s *scripted) WriteFault(storage.PageID, int) storage.WriteDecision {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.writes) == 0 {
		return storage.WriteDecision{Fate: storage.WriteOK}
	}
	d := s.writes[0]
	s.writes = s.writes[1:]
	return d
}

func failWrites(n int) []storage.WriteDecision {
	out := make([]storage.WriteDecision, n)
	for i := range out {
		out[i] = storage.WriteDecision{Fate: storage.WriteFail}
	}
	return out
}

func TestFixRetriesTransientReadError(t *testing.T) {
	d, _, p, st := newEnv(4)
	content := make([]byte, 512)
	content[100] = 0xEE
	if err := d.Write(7, content); err != nil {
		t.Fatal(err)
	}
	d.SetInjector(&scripted{readErrs: []error{storage.ErrTransientIO, storage.ErrTransientIO}})
	f, err := p.Fix(7)
	if err != nil {
		t.Fatalf("fix did not retry transient read errors: %v", err)
	}
	if f.Page.Bytes()[100] != 0xEE {
		t.Fatal("retried read returned wrong content")
	}
	p.Unfix(f)
	if st.IORetries.Load() != 2 {
		t.Fatalf("IORetries = %d, want 2", st.IORetries.Load())
	}
}

func TestEvictRetriesTransientWriteError(t *testing.T) {
	d, l, p, st := newEnv(1)
	f, _ := p.Fix(5)
	lsn := update(t, p, l, f, 0xAB)
	p.Unfix(f)
	d.SetInjector(&scripted{writes: failWrites(2)})

	// Fixing another page evicts page 5; the steal's write fails twice
	// transiently and must be retried, not dropped.
	f2, err := p.Fix(6)
	if err != nil {
		t.Fatalf("evict did not survive transient write errors: %v", err)
	}
	p.Unfix(f2)
	if st.IORetries.Load() != 2 {
		t.Fatalf("IORetries = %d, want 2", st.IORetries.Load())
	}
	buf := make([]byte, 512)
	if err := d.Read(5, buf); err != nil {
		t.Fatal(err)
	}
	if storage.PageFromBytes(buf).LSN() != uint64(lsn) {
		t.Fatal("retried evict write did not reach disk")
	}
}

// TestFailedEvictKeepsFrameDirty exhausts the write retries and verifies
// the graceful-degradation contract: the victim frame stays resident,
// dirty, and in the DPT (nothing is lost), pin bookkeeping stays correct,
// and a later retry of the same eviction succeeds.
func TestFailedEvictKeepsFrameDirty(t *testing.T) {
	d, l, p, _ := newEnv(1)
	f, _ := p.Fix(5)
	lsn := update(t, p, l, f, 0xCD)
	p.Unfix(f)
	// One initial attempt + maxIORetries retries, all failing.
	d.SetInjector(&scripted{writes: failWrites(maxIORetries + 1)})

	if _, err := p.Fix(6); !errors.Is(err, storage.ErrTransientIO) {
		t.Fatalf("exhausted evict: got %v, want ErrTransientIO", err)
	}

	// The dirty frame must still be fully accounted for.
	if n := p.NumBuffered(); n != 1 {
		t.Fatalf("NumBuffered = %d after failed evict, want 1", n)
	}
	dpt := p.DPT()
	if len(dpt) != 1 || dpt[0].Page != 5 || dpt[0].RecLSN != lsn {
		t.Fatalf("DPT after failed evict = %+v, want page 5 recLSN %d", dpt, lsn)
	}
	if pinned := p.PinnedPages(); len(pinned) != 0 {
		t.Fatalf("pin leak after failed evict: %v", pinned)
	}
	buf := make([]byte, 512)
	_ = d.Read(5, buf)
	if storage.PageFromBytes(buf).LSN() == uint64(lsn) {
		t.Fatal("failed write reached disk anyway")
	}

	// The fault schedule is drained; retrying the eviction now succeeds.
	f2, err := p.Fix(6)
	if err != nil {
		t.Fatalf("retry after failed evict: %v", err)
	}
	p.Unfix(f2)
	if err := d.Read(5, buf); err != nil {
		t.Fatal(err)
	}
	if storage.PageFromBytes(buf).LSN() != uint64(lsn) {
		t.Fatal("retried evict did not write page 5")
	}
	if len(p.DPT()) != 0 {
		t.Fatalf("DPT not cleared after successful evict: %+v", p.DPT())
	}
}

func TestFixChecksumFailureTriggersMediaRecovery(t *testing.T) {
	d, _, p, st := newEnv(4)
	good := make([]byte, 512)
	good[100] = 0x42
	if err := d.Write(9, good); err != nil {
		t.Fatal(err)
	}
	d.CorruptBits(9, 200, 0xFF) // silent corruption: checksum not restamped

	recoveries := 0
	p.SetMediaRecoverer(func(id storage.PageID) error {
		if id != 9 {
			return fmt.Errorf("recoverer called for page %d", id)
		}
		recoveries++
		return d.Write(9, good) // "replay" the page to a clean state
	})

	f, err := p.Fix(9)
	if err != nil {
		t.Fatalf("fix did not self-heal a checksum failure: %v", err)
	}
	if f.Page.Bytes()[100] != 0x42 || f.Page.Bytes()[200] != 0 {
		t.Fatal("recovered page has wrong content")
	}
	p.Unfix(f)
	if recoveries != 1 {
		t.Fatalf("media recoverer ran %d times, want 1", recoveries)
	}
	if st.CorruptPages.Load() != 1 {
		t.Fatalf("CorruptPages = %d, want 1", st.CorruptPages.Load())
	}
}

func TestFixChecksumFailureWithoutRecovererSurfaces(t *testing.T) {
	d, _, p, _ := newEnv(4)
	good := make([]byte, 512)
	if err := d.Write(9, good); err != nil {
		t.Fatal(err)
	}
	d.CorruptBits(9, 64, 0x01)
	if _, err := p.Fix(9); !errors.Is(err, storage.ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

func TestFixFailedMediaRecoverySurfaces(t *testing.T) {
	d, _, p, _ := newEnv(4)
	good := make([]byte, 512)
	if err := d.Write(9, good); err != nil {
		t.Fatal(err)
	}
	d.CorruptBits(9, 64, 0x01)
	boom := errors.New("image copy also lost")
	p.SetMediaRecoverer(func(storage.PageID) error { return boom })
	if _, err := p.Fix(9); !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped recoverer error", err)
	}
}
