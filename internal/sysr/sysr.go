// Package sysr exposes the System R-style baseline: the index locking
// approach ARIES/IM §1 and §5 compare against, reconstructed from the
// paper's characterization ("the number of locks acquired for even single
// record operations ... is very high"; SMO effects locked to end of
// transaction) and from [Moha90a]'s account of the System R protocols.
//
// The baseline runs on the identical B+-tree substrate with these lock
// sequences:
//
//   - key-value locks as in the index-specific protocol (current and next
//     keys), plus
//   - commit-duration index PAGE locks: S on every leaf a fetch reads, X
//     on every leaf an insert/delete modifies, and X on every page a
//     structure modification touches.
//
// The page locks are what make System R's SMOs serialization points:
// until the splitting transaction commits, readers of the split pages and
// other splitters of the same parent block — the behavior ARIES/IM's
// latch-only SMOs eliminate (§2.1, §5). When an SMO cannot get a page
// lock immediately it is abandoned (rolled back page-oriented) and
// retried after the wait, so lock-latch deadlocks cannot arise.
package sysr

import (
	"ariesim/internal/core"
	"ariesim/internal/lock"
	"ariesim/internal/txn"
)

// Config builds a core index configuration running the System R protocol.
func Config(id uint32, unique bool, gran lock.Granularity) core.Config {
	return core.Config{ID: id, Unique: unique, Protocol: core.SystemR, Granularity: gran}
}

// CreateIndex creates a System R-locked index on the shared tree substrate.
func CreateIndex(tx *txn.Tx, m *core.Manager, id uint32, unique bool, gran lock.Granularity) (*core.Index, error) {
	return m.CreateIndex(tx, Config(id, unique, gran))
}
