package sysr

import (
	"testing"

	"ariesim/internal/buffer"
	"ariesim/internal/core"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

func TestFacadeCreatesSystemRIndex(t *testing.T) {
	stats := &trace.Stats{}
	disk := storage.NewDisk(512)
	log := wal.NewLog(stats)
	pool := buffer.NewPool(disk, log, 64, stats)
	locks := lock.NewManager(stats)
	tm := txn.NewManager(log, locks)
	im := core.NewManager(pool, stats)
	tm.SetUndoer(im)

	tx := tm.Begin()
	ix, err := CreateIndex(tx, im, 7, true, lock.GranRecord)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if ix.Protocol() != core.SystemR {
		t.Fatalf("protocol = %v", ix.Protocol())
	}
	// An insert acquires a commit-duration index PAGE lock, the System R
	// signature, and it lives until commit.
	w := tm.Begin()
	if err := ix.Insert(w, storage.Key{Val: []byte("sysr"), RID: storage.RID{Page: 9, Slot: 1}}); err != nil {
		t.Fatal(err)
	}
	pageLock := lock.IndexPageName(uint64(ix.ID()), uint64(ix.Root()))
	if !locks.HoldsAtLeast(lock.Owner(w.ID), pageLock, lock.X) {
		t.Fatal("System R insert left no commit-duration page lock")
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if locks.NumLocks() != 0 {
		t.Fatal("locks leaked past commit")
	}
}
