// Benchmarks regenerating the paper's evaluation, one per experiment row
// in DESIGN.md §3. The paper's metrics are counts (locks/op, pages
// touched, log passes) and qualitative concurrency claims; each bench
// reports the relevant count as a custom metric alongside wall-clock
// numbers, and the baseline variants make the comparisons explicit.
//
// Run:  go test -bench=. -benchmem
package ariesim_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"ariesim"
	"ariesim/internal/core"
	"ariesim/internal/db"
	"ariesim/internal/recovery"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/workload"
)

var protocols = []struct {
	name  string
	proto core.Protocol
}{
	{"aries-im", core.DataOnly},
	{"aries-kvl", core.KVL},
	{"system-r", core.SystemR},
}

func bkey(i int) []byte { return workload.KeyFor(i) }

// primedDB builds an engine with n committed rows.
func primedDB(b *testing.B, proto core.Protocol, n int) (*db.DB, *db.Table) {
	b.Helper()
	d := db.Open(db.Options{PageSize: 4096, PoolSize: 4096, Protocol: proto})
	tbl, err := d.CreateTable("bench")
	if err != nil {
		b.Fatal(err)
	}
	tx := d.MustBegin()
	for i := 0; i < n; i++ {
		if err := tbl.Insert(tx, bkey(i*2), []byte("benchmark-row-payload")); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 {
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			tx = d.MustBegin()
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return d, tbl
}

// BenchmarkFig2LockCalls regenerates Figure 2 / the §1 lock-count
// comparison as a benchmark: single-record operations per protocol, with
// locks-per-operation reported as a metric.
func BenchmarkFig2LockCalls(b *testing.B) {
	ops := []struct {
		name  string
		setup func(b *testing.B, d *db.DB, tbl *db.Table, n int)
		run   func(d *db.DB, tbl *db.Table, i int) error
	}{
		{name: "fetch", run: func(d *db.DB, tbl *db.Table, i int) error {
			tx := d.MustBegin()
			_, err := tbl.Get(tx, bkey((i%5000)*2))
			if err != nil {
				return err
			}
			return tx.Commit()
		}},
		{name: "insert", run: func(d *db.DB, tbl *db.Table, i int) error {
			tx := d.MustBegin()
			if err := tbl.Insert(tx, bkey(20000+i), []byte("new")); err != nil {
				return err
			}
			return tx.Commit()
		}},
		{name: "delete", setup: func(b *testing.B, d *db.DB, tbl *db.Table, n int) {
			// One pre-populated victim per iteration, so every measured
			// delete is a real delete.
			tx := d.MustBegin()
			for i := 0; i < n; i++ {
				if err := tbl.Insert(tx, bkey(10_000_000+i), []byte("victim")); err != nil {
					b.Fatal(err)
				}
				if i%2000 == 1999 {
					_ = tx.Commit()
					tx = d.MustBegin()
				}
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}, run: func(d *db.DB, tbl *db.Table, i int) error {
			tx := d.MustBegin()
			if err := tbl.Delete(tx, bkey(10_000_000+i)); err != nil {
				return err
			}
			return tx.Commit()
		}},
	}
	for _, op := range ops {
		for _, p := range protocols {
			b.Run(op.name+"/"+p.name, func(b *testing.B) {
				d, tbl := primedDB(b, p.proto, 5000)
				if op.setup != nil {
					op.setup(b, d, tbl, b.N)
				}
				before := d.Stats().Snap()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := op.run(d, tbl, i); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				diff := trace.Diff(before, d.Stats().Snap())
				b.ReportMetric(float64(diff.TotalLocks())/float64(b.N), "locks/op")
				b.ReportMetric(float64(diff.LogRecords)/float64(b.N), "logrecs/op")
			})
		}
	}
}

// BenchmarkMixedThroughput compares end-to-end throughput of the three
// protocols under a concurrent mixed workload on a shared key range —
// the §5 concurrency/performance claim.
func BenchmarkMixedThroughput(b *testing.B) {
	for _, p := range protocols {
		b.Run(p.name, func(b *testing.B) {
			d, tbl := primedDB(b, p.proto, 2000)
			var seq atomic.Int64
			var deadlocks atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := workload.New(workload.Spec{
					Keys: 4000, ReadFrac: 0.6, InsertFrac: 0.25, DeleteFrac: 0.15,
					Seed: seq.Add(1),
				})
				for pb.Next() {
					op := g.Next()
					tx := d.MustBegin()
					var err error
					switch op.Kind {
					case workload.Read:
						_, err = tbl.Get(tx, op.Key)
						if errors.Is(err, db.ErrNotFound) {
							err = nil
						}
					case workload.Insert:
						err = tbl.Insert(tx, op.Key, op.Value)
						if errors.Is(err, db.ErrDuplicate) {
							err = nil
						}
					case workload.Delete:
						err = tbl.Delete(tx, op.Key)
						if errors.Is(err, db.ErrNotFound) {
							err = nil
						}
					default:
						n := 0
						err = tbl.Scan(tx, op.Key, nil, func(db.Row) (bool, error) {
							n++
							return n < 16, nil
						})
					}
					if err != nil {
						if errors.Is(err, ariesim.ErrDeadlock) {
							deadlocks.Add(1)
							_ = tx.Rollback()
							continue
						}
						b.Error(err)
						_ = tx.Rollback()
						return
					}
					if err := tx.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(deadlocks.Load()), "deadlocks")
		})
	}
}

// BenchmarkSMOInterference measures reader latency while a background
// writer continuously splits the readers' pages — §2.1's "retrievals go
// on concurrently with SMOs" versus the System R baseline.
func BenchmarkSMOInterference(b *testing.B) {
	for _, p := range []struct {
		name  string
		proto core.Protocol
	}{{"aries-im", core.DataOnly}, {"system-r", core.SystemR}} {
		b.Run(p.name, func(b *testing.B) {
			d := db.Open(db.Options{PageSize: 512, PoolSize: 2048, Protocol: p.proto})
			tbl, _ := d.CreateTable("bench")
			setup := d.MustBegin()
			for i := 0; i < 500; i++ {
				if err := tbl.Insert(setup, bkey(i*40), []byte("seed")); err != nil {
					b.Fatal(err)
				}
			}
			if err := setup.Commit(); err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				i := 0
				tx := d.MustBegin()
				for {
					select {
					case <-stop:
						_ = tx.Rollback()
						return
					default:
					}
					k := append(bkey((i*13)%20000), 'w', byte('0'+i%10), byte('0'+(i/10)%10), byte('0'+(i/100)%10))
					if err := tbl.Insert(tx, k, []byte("fodder")); err != nil {
						_ = tx.Rollback()
						tx = d.MustBegin()
						continue
					}
					i++
					if i%50 == 0 {
						_ = tx.Commit()
						tx = d.MustBegin()
					}
				}
			}()
			g := workload.New(workload.Spec{Keys: 20000, ReadFrac: 1, Seed: 7})
			b.ResetTimer()
			deadlocks := 0
			for i := 0; i < b.N; i++ {
				tx := d.MustBegin()
				_, err := tbl.Get(tx, g.Next().Key)
				if err != nil && !errors.Is(err, db.ErrNotFound) {
					// System R's commit-duration page locks can deadlock a
					// reader against the writer; the victim retries — part
					// of the baseline's cost, reported as a metric.
					if errors.Is(err, ariesim.ErrDeadlock) {
						deadlocks++
						_ = tx.Rollback()
						continue
					}
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			<-writerDone
			b.ReportMetric(float64(d.Stats().PageSplits.Load()), "splits-total")
			b.ReportMetric(float64(deadlocks), "reader-deadlocks")
		})
	}
}

// BenchmarkFig1Undo times transaction rollback in the two undo regimes of
// Figure 1 / §3: page-oriented (the original page still fits the undo)
// versus logical (an intervening space-consuming commit plus a split force
// the undo to retraverse from the root). The logical case uses the §3
// "reason 1" shape — T1 deletes a key, T2 consumes the freed space (after
// the Delete_Bit POSC) and splits the leaf, then T1 rolls back.
func BenchmarkFig1Undo(b *testing.B) {
	smallDB := func(b *testing.B) (*db.DB, *db.Table) {
		b.Helper()
		d := db.Open(db.Options{PageSize: 512, PoolSize: 4096})
		tbl, err := d.CreateTable("bench")
		if err != nil {
			b.Fatal(err)
		}
		tx := d.MustBegin()
		for i := 0; i < 2000; i++ {
			if err := tbl.Insert(tx, bkey(i*2), []byte("row")); err != nil {
				b.Fatal(err)
			}
			if i%500 == 499 {
				_ = tx.Commit()
				tx = d.MustBegin()
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		return d, tbl
	}
	b.Run("page-oriented", func(b *testing.B) {
		d, tbl := smallDB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := 2 * ((i * 131) % 1900)
			t1 := d.MustBegin()
			if err := tbl.Delete(t1, bkey(v)); err != nil {
				b.Fatal(err)
			}
			if err := t1.Rollback(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(d.Stats().UndoLogical.Load())/float64(b.N), "logical-undos/op")
	})
	b.Run("logical", func(b *testing.B) {
		d, tbl := smallDB(b)
		filler := func(v, j int) []byte {
			return append(bkey(v-4), []byte(fmt.Sprintf("x%02d", j))...)
		}
		const fillers = 30
		prevV := -1
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Reclaim the previous iteration's filler space (committed
			// deletes trigger page deletions), keeping the engine at a
			// steady state regardless of b.N.
			if prevV >= 0 {
				clean := d.MustBegin()
				for j := 0; j < fillers; j++ {
					if err := tbl.Delete(clean, filler(prevV, j)); err != nil {
						b.Fatal(err)
					}
				}
				if err := clean.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			v := 2 * ((i*131)%1900 + 4) // victim; anchors v-4, v-2 stay committed
			prevV = v
			t1 := d.MustBegin()
			if err := tbl.Delete(t1, bkey(v)); err != nil {
				b.Fatal(err)
			}
			// T2 consumes the leaf's space just below the victim (its
			// next-key locks land on the committed bkey(v-2), never on
			// T1's tripping point) and splits the leaf, then commits.
			t2 := d.MustBegin()
			for j := 0; j < fillers; j++ {
				if err := tbl.Insert(t2, filler(v, j), []byte("space-consumer-payload")); err != nil {
					b.Fatal(err)
				}
			}
			if err := t2.Commit(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := t1.Rollback(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(d.Stats().UndoLogical.Load())/float64(b.N), "logical-undos/op")
	})
}

// BenchmarkRestartRecovery measures the three-pass restart over a log of
// ~4000 operations with nothing flushed (worst-case redo), reporting the
// page-oriented redo volume.
func BenchmarkRestartRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := db.Open(db.Options{PageSize: 1024, PoolSize: 4096})
		tbl, _ := d.CreateTable("bench")
		tx := d.MustBegin()
		for j := 0; j < 4000; j++ {
			if err := tbl.Insert(tx, bkey(j), []byte("recover-me")); err != nil {
				b.Fatal(err)
			}
			if j%500 == 499 {
				_ = tx.Commit()
				tx = d.MustBegin()
			}
		}
		_ = tx.Rollback()
		d.Crash()
		b.StartTimer()
		rep, err := d.Restart()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if i == 0 {
			b.ReportMetric(float64(rep.RedosApplied), "redos")
			b.ReportMetric(float64(rep.RecordsSeen), "log-records")
		}
	}
}

// BenchmarkMediaRecovery measures rebuilding one damaged index page from a
// fuzzy image copy plus one pass of the log (§5).
func BenchmarkMediaRecovery(b *testing.B) {
	d, _ := primedDB(b, core.DataOnly, 5000)
	if err := d.Pool().FlushAll(); err != nil {
		b.Fatal(err)
	}
	img := recovery.TakeImageCopy(d.Disk(), d.Log())
	// Pick an index page to repeatedly destroy and rebuild.
	var victim storage.PageID
	buf := make([]byte, 4096)
	for _, pid := range d.Disk().PageIDs() {
		_ = d.Disk().Read(pid, buf)
		p := storage.PageFromBytes(buf)
		if p.Type() == storage.PageTypeIndex && p.IsLeaf() {
			victim = pid
			break
		}
	}
	if victim == storage.InvalidPageID {
		b.Fatal("no index leaf found")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Disk().Corrupt(victim)
		if err := recovery.RecoverPage(d.Disk(), d.Log(), img, victim); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeLatchVsTreeLock compares the default X tree latch against
// the §5 extension (tree lock permitting concurrent SMO preparation)
// under a split-heavy parallel insert load.
func BenchmarkTreeLatchVsTreeLock(b *testing.B) {
	for _, mode := range []struct {
		name     string
		treeLock bool
	}{{"tree-latch", false}, {"tree-lock", true}} {
		b.Run(mode.name, func(b *testing.B) {
			d := db.Open(db.Options{PageSize: 4096, PoolSize: 8192, UseTreeLock: mode.treeLock})
			tbl, _ := d.CreateTable("bench")
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				base := int(seq.Add(1)) * 10_000_000
				i := 0
				for pb.Next() {
					tx := d.MustBegin()
					if err := tbl.Insert(tx, bkey(base+i), []byte("split-heavy")); err != nil {
						if errors.Is(err, ariesim.ErrDeadlock) {
							_ = tx.Rollback()
							continue
						}
						b.Error(err)
						return
					}
					i++
					if err := tx.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkCoreOps reports the raw single-threaded cost of the four basic
// index operations (paper §1.1) at the engine level.
func BenchmarkCoreOps(b *testing.B) {
	b.Run("fetch", func(b *testing.B) {
		d, tbl := primedDB(b, core.DataOnly, 10000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx := d.MustBegin()
			if _, err := tbl.Get(tx, bkey((i%10000)*2)); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fetch-next", func(b *testing.B) {
		d, tbl := primedDB(b, core.DataOnly, 10000)
		b.ResetTimer()
		i := 0
		for i < b.N {
			tx := d.MustBegin()
			err := tbl.Scan(tx, bkey(0), nil, func(db.Row) (bool, error) {
				i++
				return i < b.N, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert", func(b *testing.B) {
		d, tbl := primedDB(b, core.DataOnly, 1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx := d.MustBegin()
			if err := tbl.Insert(tx, bkey(1_000_000+i), []byte("bench-insert")); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delete", func(b *testing.B) {
		d, tbl := primedDB(b, core.DataOnly, 1000)
		// Pre-populate enough victims outside the timer.
		tx := d.MustBegin()
		for i := 0; i < b.N; i++ {
			if err := tbl.Insert(tx, bkey(2_000_000+i), []byte("bench-delete")); err != nil {
				b.Fatal(err)
			}
			if i%2000 == 1999 {
				_ = tx.Commit()
				tx = d.MustBegin()
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx := d.MustBegin()
			if err := tbl.Delete(tx, bkey(2_000_000+i)); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCommitForce isolates the synchronous log force at commit — the
// paper's "number of synchronous log I/Os" efficiency metric (one per
// commit, none per page write thanks to no-force).
func BenchmarkCommitForce(b *testing.B) {
	d, tbl := primedDB(b, core.DataOnly, 100)
	before := d.Stats().Snap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := d.MustBegin()
		if err := tbl.Insert(tx, bkey(3_000_000+i), []byte("x")); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	diff := trace.Diff(before, d.Stats().Snap())
	b.ReportMetric(float64(diff.LogForces)/float64(b.N), "forces/commit")
	b.ReportMetric(float64(diff.PageWrites)/float64(b.N), "pagewrites/commit")
}

// BenchmarkCheckpointOverhead measures a fuzzy checkpoint (no page
// flushes, no quiesce — two log records plus the table snapshots).
func BenchmarkCheckpointOverhead(b *testing.B) {
	d, tbl := primedDB(b, core.DataOnly, 5000)
	tx := d.MustBegin()
	for i := 0; i < 50; i++ {
		_ = tbl.Insert(tx, bkey(4_000_000+i), []byte("dirty"))
	}
	_ = tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Checkpoint()
	}
}
