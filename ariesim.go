// Package ariesim is a from-scratch Go implementation of ARIES/IM — the
// index concurrency-control and recovery method of Mohan & Levine,
// "ARIES/IM: An Efficient and High Concurrency Index Management Method
// Using Write-Ahead Logging" (SIGMOD 1992) — together with every substrate
// the method assumes: the ARIES write-ahead-logging recovery core (CLRs,
// nested top actions, three-pass restart, fuzzy checkpoints, media
// recovery), a multi-granularity lock manager, S/X page latches, a
// steal/no-force buffer pool, slotted byte-level pages, and a record
// manager — plus the ARIES/KVL and System R-style locking baselines the
// paper compares against.
//
// This package is the public façade: a small transactional table API over
// the full engine. The engine guarantees serializability (repeatable
// read) through ARIES/IM's data-only key locking and next-key locking,
// and full crash recovery through ARIES restart. See DESIGN.md for the
// architecture and EXPERIMENTS.md for the paper-reproduction results.
//
//	db := ariesim.Open(ariesim.Options{})
//	tbl, _ := db.CreateTable("accounts")
//	tx, _ := db.Begin() // fails with ErrCrashed while the engine is down
//	_ = tbl.Insert(tx, []byte("alice"), []byte("100"))
//	_ = tx.Commit()
//	db.Crash()        // lose all volatile state
//	_, _ = db.Restart() // ARIES analysis / redo / undo
package ariesim

import (
	"io"

	"ariesim/internal/core"
	"ariesim/internal/db"
	"ariesim/internal/lock"
	"ariesim/internal/recovery"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// Options configures an engine. The zero value is a 4 KiB-page, 256-frame,
// record-granularity ARIES/IM engine.
type Options = db.Options

// DB is an engine instance: simulated disk + WAL + buffer pool + lock,
// transaction, record and index managers.
type DB = db.DB

// Table is a transactional table: a record heap plus a unique primary
// index, with optional secondary indexes.
type Table = db.Table

// Row is one scan result.
type Row = db.Row

// Tx is a transaction handle. Commit forces the log; Rollback undoes all
// work through compensation log records.
type Tx = txn.Tx

// RestartReport summarizes a recovery run (records analyzed, redone,
// losers undone, in-doubt transactions).
type RestartReport = recovery.Report

// Stats is the engine instrumentation: lock calls by space/mode/duration,
// latch and page counters, log volume, undo/redo shape.
type Stats = trace.Stats

// Protocol selects the index locking protocol.
type Protocol = core.Protocol

// Locking protocols: ARIESIM is the paper's data-only locking; the others
// exist for comparison benchmarks.
const (
	ProtocolARIESIM       = core.DataOnly
	ProtocolIndexSpecific = core.IndexSpecific
	ProtocolARIESKVL      = core.KVL
	ProtocolSystemR       = core.SystemR
)

// Granularity selects the data-lock granularity.
type Granularity = lock.Granularity

// Data lock granularities (paper §2.1: flexible granularities).
const (
	GranularityRecord = lock.GranRecord
	GranularityPage   = lock.GranPage
)

// Errors surfaced by table operations.
var (
	// ErrNotFound reports a missing row.
	ErrNotFound = db.ErrNotFound
	// ErrDuplicate reports a primary-key violation; the transaction holds
	// a lock making the violation repeatable (§2.4).
	ErrDuplicate = db.ErrDuplicate
	// ErrDeadlock reports that the transaction was chosen as a deadlock
	// victim; roll it back and retry (DB.RunTxn does both automatically).
	ErrDeadlock = lock.ErrDeadlock
	// ErrLockTimeout reports a lock wait that exceeded the configured
	// bound; like a deadlock abort it is repaired by rollback + retry.
	ErrLockTimeout = lock.ErrLockTimeout
	// ErrCrashed reports that the engine is down (after Crash) and must be
	// Restarted before it accepts new transactions.
	ErrCrashed = db.ErrCrashed
	// ErrMediaFailure reports a corrupt page that media recovery could not
	// rebuild from the image copy and log.
	ErrMediaFailure = db.ErrMediaFailure
)

// RunTxnOpts tunes DB.RunTxnWith's automatic retry loop (attempt bound,
// backoff shape, jitter seed, commit-ack callback).
type RunTxnOpts = db.RunTxnOpts

// Open creates a fresh engine on a new simulated disk.
func Open(opts Options) *DB { return db.Open(opts) }

// OpenStandby builds a warm standby from a shipped log archive (see
// DB.ArchiveLog and wal.ReadArchive) plus the primary's catalog blob
// (DB.Disk().ReadMeta()), replaying the log page-oriented onto a fresh
// disk — the log-shipping pattern §3's redo design makes possible.
func OpenStandby(opts Options, shipped *Log, catalogMeta []byte) (*DB, *RestartReport, error) {
	return db.OpenStandby(opts, shipped, catalogMeta)
}

// Log is the write-ahead log manager (exposed for archiving and standby
// construction).
type Log = wal.Log

// ReadLogArchive reconstructs a Log from an archive stream produced by
// DB.ArchiveLog.
func ReadLogArchive(r io.Reader) (*Log, error) { return wal.ReadArchive(r) }
