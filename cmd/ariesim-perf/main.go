// Command ariesim-perf measures the engine under costed devices, comparing
// pre-PR configurations with current ones. It writes machine-readable
// results to a JSON file and prints a human summary, anchoring the perf
// trajectory the roadmap tracks. Two workload families:
//
//   - concurrency (default): N workers drive transactions against a costed
//     log device (simulated force latency), comparing single lock-manager
//     shard + no group commit against the sharded lock table + group commit.
//
//   - buffer: a capacity-constrained pool over a costed page device
//     (simulated per-page latency), comparing the serial-I/O single-shard
//     pool against the sharded clock-sweep pool with I/O outside the lock,
//     with and without the background page cleaner.
//
//   - recovery: crash/restart cost, serial vs page-partitioned parallel
//     redo, plus online restart's time to first commit.
//
//   - standby: the price of hot-standby replication — solo vs async log
//     shipping vs semi-sync gated commits — plus the failover headline:
//     crash-promoted TTFC against an online restart of the same crash.
//
//   - mvcc: the read-path comparison — S-lock reads through RunTxn vs
//     lock-free snapshot reads through RunReadOnly, both under a
//     concurrent hot-key zipfian writer. The mvcc cells must make zero
//     lock-manager calls (trace-counted), and regenerating the results
//     gates the reader throughput against the committed baseline.
//
//     ariesim-perf                         # full matrix -> BENCH_concurrency.json
//     ariesim-perf -workload buffer        # buffer matrix -> BENCH_buffer.json
//     ariesim-perf -workload standby       # replication matrix -> BENCH_standby.json
//     ariesim-perf -workload mvcc          # read-path matrix -> BENCH_mvcc.json
//     ariesim-perf -smoke                  # reduced matrix (CI)
//     ariesim-perf -verify FILE            # validate an existing results file
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ariesim/internal/db"
	"ariesim/internal/repl"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/workload"
)

var workerCounts = []int{1, 2, 4, 8, 16}

// Cell is one benchmark measurement: a (workload, configuration, worker
// count) point.
type Cell struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Workers  int    `json:"workers"`
	Txns     int    `json:"txns"`
	Ops      int    `json:"ops"`

	ElapsedMS  float64 `json:"elapsed_ms"`
	TxnsPerSec float64 `json:"txns_per_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`

	LogForces        uint64  `json:"log_forces"`
	GroupCommits     uint64  `json:"group_commits"`
	ForceWaiters     uint64  `json:"force_waiters"`
	GroupCommitRatio float64 `json:"group_commit_ratio"`
	Deadlocks        uint64  `json:"deadlocks"`
	TxnRetries       uint64  `json:"txn_retries"`

	// Append-path counters (concurrency family): lock-free LSN range
	// claims and the forces that had to wait for the contiguity watermark.
	AppendReservations uint64 `json:"append_reservations,omitempty"`
	WatermarkStalls    uint64 `json:"watermark_stalls,omitempty"`

	// Buffer-family counters (omitted from concurrency-family cells).
	PageFixes      uint64  `json:"page_fixes,omitempty"`
	PageMisses     uint64  `json:"page_misses,omitempty"`
	HitRate        float64 `json:"hit_rate,omitempty"`
	PageWrites     uint64  `json:"page_writes,omitempty"`
	PageEvicted    uint64  `json:"pages_evicted,omitempty"`
	EvictionsDirty uint64  `json:"evictions_dirty,omitempty"`
	EvictionStalls uint64  `json:"eviction_stalls,omitempty"`
	CleanerWrites  uint64  `json:"cleaner_writes,omitempty"`

	// Recovery-family measurements (omitted from the other families).
	RestartMS       float64 `json:"restart_ms,omitempty"`
	AnalysisMS      float64 `json:"analysis_ms,omitempty"`
	RedoMS          float64 `json:"redo_ms,omitempty"`
	UndoMS          float64 `json:"undo_ms,omitempty"`
	RecordsSeen     int     `json:"records_seen,omitempty"`
	RedoApplied     int     `json:"redo_applied,omitempty"`
	RedoSkipped     int     `json:"redo_skipped,omitempty"`
	PagesPrefetched int     `json:"pages_prefetched,omitempty"`
	RedoPerSec      float64 `json:"redo_per_sec,omitempty"`
	RowsRecovered   int     `json:"rows_recovered,omitempty"`

	// Online-restart cells only (config "online"): wall time from crash to
	// the first committed probe transaction, and where the DPT pages were
	// recovered (at fix time by the probe / by the background drain).
	TimeToFirstCommitMS float64 `json:"time_to_first_commit_ms,omitempty"`
	PagesOnDemand       int     `json:"pages_on_demand,omitempty"`
	PagesDrained        int     `json:"pages_drained,omitempty"`

	// Standby-family cells only: replication lag percentiles (log bytes
	// the primary had hardened beyond the standby's applied tail) and
	// shipping volume.
	LagP50Bytes     float64 `json:"lag_p50_bytes,omitempty"`
	LagP99Bytes     float64 `json:"lag_p99_bytes,omitempty"`
	SegmentsShipped uint64  `json:"segments_shipped,omitempty"`
	SegmentsApplied uint64  `json:"segments_applied,omitempty"`

	// MVCC-family cells only: snapshot-read accounting and the background
	// hot-key writer's concurrent throughput. ReaderLockCalls is enforced
	// to zero at cell generation for config "mvcc" — a snapshot reader
	// that touches the lock manager fails the run, not just the review.
	SnapshotReads     uint64  `json:"snapshot_reads,omitempty"`
	SnapshotChainHits uint64  `json:"snapshot_chain_hits,omitempty"`
	VersionsPushed    uint64  `json:"versions_pushed,omitempty"`
	ReaderLockCalls   uint64  `json:"reader_lock_calls,omitempty"`
	WriterTxns        int     `json:"writer_txns,omitempty"`
	WriterTxnsPerSec  float64 `json:"writer_txns_per_sec,omitempty"`
}

// Summary is the headline comparison the acceptance gate reads.
type Summary struct {
	// HotkeySpeedup16 is new/old transactions-per-second on the hot-key
	// write workload at 16 workers (concurrency family).
	HotkeySpeedup16 float64 `json:"hotkey_write_speedup_16w,omitempty"`
	// NewGroupCommitRatio is the hot-key 16-worker group-commit ratio under
	// the new configuration: grouped / (grouped + physical forces).
	NewGroupCommitRatio float64 `json:"new_group_commit_ratio_16w,omitempty"`

	// BufferReadSpeedup16 is new/old transactions-per-second on the
	// capacity-constrained read-mostly workload at 16 workers (buffer
	// family): the payoff of sharding + I/O outside the lock.
	BufferReadSpeedup16 float64 `json:"buffer_read_speedup_16w,omitempty"`
	// BufferReadSpeedup1 is the same ratio at 1 worker — the no-regression
	// check (sharding must not tax the uncontended path).
	BufferReadSpeedup1 float64 `json:"buffer_read_speedup_1w,omitempty"`
	// CleanerDirtyEvictDrop is (dirty foreground evictions without cleaner)
	// / (with cleaner), summed across worker counts on the write-heavy
	// buffer workload: how thoroughly the cleaner keeps steal writebacks
	// off the Fix path.
	CleanerDirtyEvictDrop float64 `json:"cleaner_dirty_evict_drop,omitempty"`

	// RecoveryRedoSpeedup8 is serial redo wall time / 8-worker redo wall
	// time on the cold-DPT long-log scenario (recovery family): the payoff
	// of page-partitioned parallel restart redo.
	RecoveryRedoSpeedup8 float64 `json:"recovery_redo_speedup_8w,omitempty"`
	// RecoveryRestartSpeedup8 is the same ratio over the whole restart
	// (analysis + redo + undo), diluted by the serial passes.
	RecoveryRestartSpeedup8 float64 `json:"recovery_restart_speedup_8w,omitempty"`
	// OnlineTTFCMS8 is the online-restart time to first committed
	// transaction on the cold-DPT long-log scenario at 8 drain workers —
	// the engine opens after analysis, so this must track the analysis
	// wall, not the redo wall. OnlineTTFCOverAnalysis is the ratio the
	// acceptance gate bounds at 2x (plus a scheduler-noise floor).
	OnlineTTFCMS8          float64 `json:"online_ttfc_ms_8w,omitempty"`
	OnlineTTFCOverAnalysis float64 `json:"online_ttfc_over_analysis_8w,omitempty"`

	// Standby family: commit-throughput cost of replication at 16 workers
	// (solo / replicated, so 1.0 = free) and the failover headline — the
	// crash-to-first-commit wall of a promoted standby, which must stay
	// within 2x of an ONLINE RESTART of the very same crash image (the
	// standby has been replaying continuously, so it starts warm).
	StandbyAsyncCost16    float64 `json:"standby_async_cost_16w,omitempty"`
	StandbySyncCost16     float64 `json:"standby_sync_cost_16w,omitempty"`
	StandbyFailoverTTFCMS float64 `json:"standby_failover_ttfc_ms,omitempty"`
	StandbyOnlineTTFCMS   float64 `json:"standby_online_restart_ttfc_ms,omitempty"`
	StandbyTTFCOverOnline float64 `json:"standby_ttfc_over_online,omitempty"`

	// MVCC family: lock-free snapshot-read throughput over the S-lock
	// read path at 16 workers, both under the same concurrent hot-key
	// writer, plus that writer's throughput while 16 snapshot readers ran
	// (the writer-overhead sanity number).
	MVCCReadSpeedup16      float64 `json:"mvcc_read_speedup_16w,omitempty"`
	MVCCWriterTxnsPerSec16 float64 `json:"mvcc_writer_txns_per_sec_16w,omitempty"`

	// Index family: throughput of a secondary-key range query answered by
	// an indexed range scan over the same query answered by a locked full
	// scan + filter, at 16 workers, both under the same concurrent
	// key-moving writer, plus that writer's concurrent throughput.
	IndexScanSpeedup16      float64 `json:"index_scan_speedup_16w,omitempty"`
	IndexWriterTxnsPerSec16 float64 `json:"index_writer_txns_per_sec_16w,omitempty"`
}

// Result is the BENCH_concurrency.json / BENCH_buffer.json schema.
type Result struct {
	Meta struct {
		Workload     string `json:"workload,omitempty"` // empty = concurrency (legacy files)
		ForceDelayUS int    `json:"force_delay_us"`
		IODelayUS    int    `json:"io_delay_us,omitempty"`
		PoolSize     int    `json:"pool_size,omitempty"`
		TxnsPerCell  int    `json:"txns_per_cell"`
		OpsPerTxn    int    `json:"ops_per_txn"`
		Smoke        bool   `json:"smoke"`
		Generated    string `json:"generated"`
	} `json:"meta"`
	Cells   []Cell  `json:"cells"`
	Summary Summary `json:"summary"`
}

// config is one engine configuration under test.
type config struct {
	name string
	opts func(stats *trace.Stats, force, io time.Duration) db.Options
}

var configs = []config{
	{"old", func(stats *trace.Stats, force, _ time.Duration) db.Options {
		// The pre-PR engine: one lock-manager shard (a global mutex) and
		// serial per-caller log flushes.
		return db.Options{Stats: stats, LogForceDelay: force, LockShards: 1, NoGroupCommit: true}
	}},
	{"new", func(stats *trace.Stats, force, _ time.Duration) db.Options {
		return db.Options{Stats: stats, LogForceDelay: force}
	}},
}

// bufferPoolSize keeps the pool an order of magnitude smaller than the
// working set, so every cell measures eviction and miss handling, not an
// all-cached map.
const bufferPoolSize = 64

var bufferConfigs = []config{
	{"old", func(stats *trace.Stats, force, io time.Duration) db.Options {
		// The seed pool: one frame-table mutex held across miss reads and
		// eviction writebacks.
		return db.Options{Stats: stats, LogForceDelay: force, PageIODelay: io,
			PoolSize: bufferPoolSize, BufferShards: 1, BufferSerialIO: true}
	}},
	{"new", func(stats *trace.Stats, force, io time.Duration) db.Options {
		return db.Options{Stats: stats, LogForceDelay: force, PageIODelay: io,
			PoolSize: bufferPoolSize}
	}},
	{"new-cleaner", func(stats *trace.Stats, force, io time.Duration) db.Options {
		// Each tick the cleaner drains every dirty unpinned frame ahead of
		// the clock hands, so a millisecond cadence suffices even though a
		// write-heavy foreground re-dirties frames at page-I/O speed.
		return db.Options{Stats: stats, LogForceDelay: force, PageIODelay: io,
			PoolSize: bufferPoolSize, CleanerInterval: time.Millisecond}
	}},
}

// bench describes one workload: how to prefill the table and what one
// operation does.
type bench struct {
	name    string
	keys    int
	prefill int
	// ops overrides the global ops-per-txn when nonzero (hot-key runs one
	// op per txn so commit cost, not lock thrash, is what's measured).
	ops  int
	body func(tb *db.Table, tx *txn.Tx, op workload.Op) error
	spec func(worker int) workload.Spec
}

// applyOp tolerates the races a concurrent mixed workload creates: an
// insert landing on a live key becomes an update; reads and deletes of a
// missing key are no-ops. Everything else is a real error.
func applyOp(tb *db.Table, tx *txn.Tx, op workload.Op) error {
	switch op.Kind {
	case workload.Read, workload.ScanShort:
		if _, err := tb.Get(tx, op.Key); err != nil && !errors.Is(err, db.ErrNotFound) {
			return err
		}
	case workload.Insert:
		if err := tb.Insert(tx, op.Key, op.Value); err != nil {
			if !errors.Is(err, db.ErrDuplicate) {
				return err
			}
			// The duplicate report holds no lock on the found key (the
			// uniqueness check is instant-duration), so a concurrent delete
			// can commit before this fallback — the same race the chaos
			// sweep tolerates.
			if err := tb.Update(tx, op.Key, op.Value); err != nil && !errors.Is(err, db.ErrNotFound) {
				return err
			}
		}
	case workload.Delete:
		if err := tb.Delete(tx, op.Key); err != nil && !errors.Is(err, db.ErrNotFound) {
			return err
		}
	}
	return nil
}

var benches = []bench{
	{
		name: "read-heavy", keys: 4096, prefill: 4096,
		body: applyOp,
		spec: func(w int) workload.Spec {
			return workload.Spec{Keys: 4096, ReadFrac: 0.9, InsertFrac: 0.1, Seed: int64(w + 1)}
		},
	},
	{
		name: "write-heavy", keys: 4096, prefill: 2048,
		body: applyOp,
		spec: func(w int) workload.Spec {
			return workload.Spec{Keys: 4096, ReadFrac: 0.2, InsertFrac: 0.5, DeleteFrac: 0.3, Seed: int64(w + 1)}
		},
	},
	{
		name: "hotkey-write", keys: 2048, prefill: 2048, ops: 1,
		// Updates on a zipfian hot set: the contention + commit-force
		// workload group commit and lock sharding exist for.
		body: func(tb *db.Table, tx *txn.Tx, op workload.Op) error {
			return tb.Update(tx, op.Key, []byte("hot-update-value"))
		},
		spec: func(w int) workload.Spec {
			return workload.Spec{Keys: 2048, Dist: workload.Zipf, InsertFrac: 1, Seed: int64(w + 1)}
		},
	},
	{
		name: "append-burst", keys: 4096, prefill: 4096, ops: 8,
		// Worker-private update bursts: disjoint key slices mean locks
		// never conflict and every transaction writes eight update records
		// before one (grouped) commit force — the cell isolates the log
		// append path itself, encode + LSN reservation + publish, under
		// rising worker counts. This is the workload the lock-free
		// reservation pipeline exists for.
		body: func(tb *db.Table, tx *txn.Tx, op workload.Op) error {
			return tb.Update(tx, op.Key, []byte("append-burst-value"))
		},
		spec: func(w int) workload.Spec {
			// Keys are re-mapped to the worker's private slice in the run
			// loop; the spec only drives op sequencing.
			return workload.Spec{Keys: 4096, InsertFrac: 1, Seed: int64(w + 1)}
		},
	},
	{
		name: "smo-heavy", keys: 1 << 20, prefill: 0,
		// Sequential fresh-key inserts keep splitting the right edge of the
		// tree (nested-top-action SMOs dominate).
		body: func(tb *db.Table, tx *txn.Tx, op workload.Op) error {
			return tb.Insert(tx, op.Key, op.Value)
		},
		spec: func(w int) workload.Spec {
			// Distinct sequential ranges per worker via the seed; keys are
			// made worker-unique in the run loop instead.
			return workload.Spec{Keys: 1 << 20, Dist: workload.Sequential, InsertFrac: 1, Seed: int64(w + 1)}
		},
	},
}

// bufferBenches stress page residency: 4096 keys over a 64-frame pool, so
// nearly every operation walks uncached pages on the costed device.
var bufferBenches = []bench{
	{
		name: "buffer-read", keys: 4096, prefill: 4096,
		body: applyOp,
		spec: func(w int) workload.Spec {
			return workload.Spec{Keys: 4096, ReadFrac: 0.95, InsertFrac: 0.05, Seed: int64(w + 1)}
		},
	},
	{
		// Prefill the full key space here too: a half-filled tree fits in
		// the 64-frame pool and the cell stops measuring eviction at all.
		name: "buffer-write", keys: 4096, prefill: 4096,
		// Write-heavy churn keeps most resident frames dirty: the workload
		// where foreground evictions degenerate into steal writebacks —
		// unless the cleaner gets there first.
		body: applyOp,
		spec: func(w int) workload.Spec {
			return workload.Spec{Keys: 4096, ReadFrac: 0.3, InsertFrac: 0.7, Seed: int64(w + 1)}
		},
	},
}

// recoveryScenario is one crash shape the recovery family measures: how
// much committed work sits only in the log (vs safely on disk) when the
// engine dies.
type recoveryScenario struct {
	name string
	// rows is the table size; every row is inserted, flushed to disk, then
	// updated again so restart redo must read each page cold and reapply
	// the update tail.
	rows int
	// ckptEvery, when positive, flushes the pool and takes a fuzzy
	// checkpoint every that-many update transactions, shortening the redo
	// tail; zero leaves the whole update phase as one long cold-DPT redo.
	ckptEvery int
}

var recoveryScenarios = []recoveryScenario{
	// The redo-heavy headline: every page's disk image predates the whole
	// update phase, and no checkpoint bounds the scan.
	{name: "recover-cold-long", rows: 1536},
	// Same shape, quarter-length log: startup cost dominates more.
	{name: "recover-cold-short", rows: 384},
	// Well-checkpointed operation: only the tail after the last flush +
	// checkpoint needs redo.
	{name: "recover-ckpt", rows: 1536, ckptEvery: 8},
}

// recoveryPoolSize comfortably holds every page the scenarios touch, so a
// cell measures redo I/O and apply cost, not eviction thrash.
const recoveryPoolSize = 1024

// recoveryBatch is rows per workload transaction.
const recoveryBatch = 32

// buildRecoveryBase populates an engine for one scenario and force-crashes
// nothing yet: insert all rows, flush them to disk, force the log, then
// update every row (the redo tail restart must replay onto cold pages),
// leave a trailing in-flight loser, and force the log so the crash loses
// only volatile state. Returns the engine plus the exact committed rows a
// restart must recover.
func buildRecoveryBase(sc recoveryScenario, ioDelay time.Duration) (*db.DB, map[string]string, error) {
	d := db.Open(db.Options{Stats: &trace.Stats{}, PageSize: 512,
		PoolSize: recoveryPoolSize, PageIODelay: ioDelay})
	tbl, err := d.CreateTable("bench")
	if err != nil {
		return nil, nil, err
	}
	key := func(i int) string { return fmt.Sprintf("r%05d", i) }
	model := map[string]string{}
	for lo := 0; lo < sc.rows; lo += recoveryBatch {
		hi := lo + recoveryBatch
		if hi > sc.rows {
			hi = sc.rows
		}
		err := d.RunTxn(func(tx *txn.Tx) error {
			for i := lo; i < hi; i++ {
				if err := tbl.Insert(tx, []byte(key(i)), []byte("insert-phase-value")); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("%s: insert: %w", sc.name, err)
		}
	}
	// Put phase-1 images on disk: redo of the update tail below must read
	// every page back from the costed device (the cold-DPT cost).
	if err := d.Pool().FlushAll(); err != nil {
		return nil, nil, err
	}
	d.Log().ForceAll()

	txns := 0
	for lo := 0; lo < sc.rows; lo += recoveryBatch {
		hi := lo + recoveryBatch
		if hi > sc.rows {
			hi = sc.rows
		}
		err := d.RunTxn(func(tx *txn.Tx) error {
			for i := lo; i < hi; i++ {
				v := fmt.Sprintf("update-phase-%05d-%05d", i, lo)
				if err := tbl.Update(tx, []byte(key(i)), []byte(v)); err != nil {
					return err
				}
				model[key(i)] = v
			}
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("%s: update: %w", sc.name, err)
		}
		txns++
		if sc.ckptEvery > 0 && txns%sc.ckptEvery == 0 {
			if err := d.Pool().FlushAll(); err != nil {
				return nil, nil, err
			}
			d.Checkpoint()
		}
	}
	// A trailing in-flight loser gives the undo pass real work too.
	loser := d.MustBegin()
	for i := 0; i < 4; i++ {
		if err := tbl.Insert(loser, []byte(fmt.Sprintf("zloser%02d", i)), []byte("never-committed")); err != nil {
			return nil, nil, fmt.Errorf("%s: loser: %w", sc.name, err)
		}
	}
	d.Log().ForceAll()
	return d, model, nil
}

// runRecoveryCell crashes a fork of the populated base at the end of its
// log, restarts it with the given redo worker count, and verifies the
// recovered table equals the committed model exactly — a benchmark cell
// that cannot report a time for a recovery that lost data.
func runRecoveryCell(sc recoveryScenario, base *db.DB, model map[string]string, workers int) (Cell, error) {
	fork := base.Fork()
	fork.SetRedoWorkers(workers)
	start := time.Now()
	rep, err := fork.Restart()
	if err != nil {
		return Cell{}, fmt.Errorf("%s w=%d: restart: %w", sc.name, workers, err)
	}
	elapsed := time.Since(start)

	tbl, err := fork.Table("bench")
	if err != nil {
		return Cell{}, err
	}
	tx, err := fork.Begin()
	if err != nil {
		return Cell{}, err
	}
	got := map[string]string{}
	err = tbl.Scan(tx, nil, nil, func(r db.Row) (bool, error) {
		got[string(r.Key)] = string(r.Value)
		return true, nil
	})
	if cerr := tx.Commit(); err == nil {
		err = cerr
	}
	if err != nil {
		return Cell{}, fmt.Errorf("%s w=%d: scan: %w", sc.name, workers, err)
	}
	if len(got) != len(model) {
		return Cell{}, fmt.Errorf("%s w=%d: recovered %d rows, want %d", sc.name, workers, len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			return Cell{}, fmt.Errorf("%s w=%d: row %q recovered %q, want %q", sc.name, workers, k, got[k], v)
		}
	}

	cfg := "parallel"
	if workers == 1 {
		cfg = "serial"
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	cell := Cell{
		Workload: sc.name, Config: cfg, Workers: workers,
		ElapsedMS:  ms(elapsed),
		RestartMS:  ms(elapsed),
		AnalysisMS: ms(rep.AnalysisWall), RedoMS: ms(rep.RedoWall), UndoMS: ms(rep.UndoWall),
		RecordsSeen: rep.RecordsSeen, RedoApplied: rep.RedosApplied, RedoSkipped: rep.RedosSkipped,
		PagesPrefetched: rep.PagesPrefetched, RowsRecovered: len(got),
	}
	if rep.RedoWall > 0 {
		cell.RedoPerSec = float64(rep.RedosApplied) / rep.RedoWall.Seconds()
	}
	return cell, nil
}

// onlineWorkers is the drain parallelism for the online-restart cell; one
// cell per scenario, measured against the serial/parallel offline matrix.
const onlineWorkers = 8

// runOnlineRecoveryCell crashes a fork of the populated base and recovers
// it ONLINE: restart returns after analysis, a probe transaction commits
// through RunTxn while the background drain and loser undo are still
// running (its page fixes recover DPT pages on demand), and only then does
// the cell await full recovery and verify the table byte-for-byte. The
// probe DELETES a known committed row — a real write transaction (X lock,
// data ghost, index delete, forced commit record) that avoids the heap
// insert path, whose first use after ANY restart walks the whole page
// chain cold to rebuild its placement hint; that cost is an artifact of a
// cold cache, not of recovery, so it would drown the number this cell
// exists to measure. The row is re-inserted untimed after recovery
// completes, restoring the model for the exact verification.
// TimeToFirstCommitMS is the crash-to-first-ack wall — the availability
// number online restart exists to shrink.
func runOnlineRecoveryCell(sc recoveryScenario, base *db.DB, model map[string]string, workers int) (Cell, error) {
	fork := base.Fork()
	fork.SetRedoWorkers(workers)
	fork.SetOnlineRestart(true)
	start := time.Now()
	rep, err := fork.Restart()
	if err != nil {
		return Cell{}, fmt.Errorf("%s online w=%d: restart: %w", sc.name, workers, err)
	}
	if !rep.Online {
		return Cell{}, fmt.Errorf("%s online w=%d: restart did not run online", sc.name, workers)
	}
	tbl, err := fork.Table("bench")
	if err != nil {
		return Cell{}, err
	}
	probeKey := "r00000"
	probeVal, ok := model[probeKey]
	if !ok {
		return Cell{}, fmt.Errorf("%s online w=%d: probe key %q not in model", sc.name, workers, probeKey)
	}
	err = fork.RunTxn(func(tx *txn.Tx) error {
		return tbl.Delete(tx, []byte(probeKey))
	})
	if err != nil {
		return Cell{}, fmt.Errorf("%s online w=%d: probe commit: %w", sc.name, workers, err)
	}
	ttfc := time.Since(start)
	final, err := fork.AwaitRecovered()
	if err != nil {
		return Cell{}, fmt.Errorf("%s online w=%d: await recovered: %w", sc.name, workers, err)
	}
	elapsed := time.Since(start)
	err = fork.RunTxn(func(tx *txn.Tx) error {
		return tbl.Insert(tx, []byte(probeKey), []byte(probeVal))
	})
	if err != nil {
		return Cell{}, fmt.Errorf("%s online w=%d: probe restore: %w", sc.name, workers, err)
	}

	tx, err := fork.Begin()
	if err != nil {
		return Cell{}, err
	}
	got := map[string]string{}
	err = tbl.Scan(tx, nil, nil, func(r db.Row) (bool, error) {
		got[string(r.Key)] = string(r.Value)
		return true, nil
	})
	if cerr := tx.Commit(); err == nil {
		err = cerr
	}
	if err != nil {
		return Cell{}, fmt.Errorf("%s online w=%d: scan: %w", sc.name, workers, err)
	}
	if len(got) != len(model) {
		return Cell{}, fmt.Errorf("%s online w=%d: recovered %d rows, want %d", sc.name, workers, len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			return Cell{}, fmt.Errorf("%s online w=%d: row %q recovered %q, want %q", sc.name, workers, k, got[k], v)
		}
	}

	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	cell := Cell{
		Workload: sc.name, Config: "online", Workers: workers,
		ElapsedMS:  ms(elapsed),
		RestartMS:  ms(elapsed),
		AnalysisMS: ms(final.AnalysisWall), RedoMS: ms(final.RedoWall), UndoMS: ms(final.UndoWall),
		RecordsSeen: final.RecordsSeen, RedoApplied: final.RedosApplied, RedoSkipped: final.RedosSkipped,
		PagesPrefetched: final.PagesPrefetched, RowsRecovered: len(got),
		TimeToFirstCommitMS: ms(ttfc),
		PagesOnDemand:       final.PagesOnDemand,
		PagesDrained:        final.PagesDrained,
	}
	if final.RedoWall > 0 {
		cell.RedoPerSec = float64(final.RedosApplied) / final.RedoWall.Seconds()
	}
	return cell, nil
}

// standbyConfigs are the replication postures the standby family prices:
// no replication at all, asynchronous shipping (commits don't wait), and
// the semi-sync gate (commits ack only once standby-durable).
var standbyConfigs = []string{"solo", "async", "sync"}

// standbyKeys is the uniform update key space: wide enough that lock
// conflicts are rare, so cells price the commit path, not lock thrash.
const standbyKeys = 2048

// standbyReplica builds a channel + standby + shipper around a primary.
// The replica's page geometry must mirror the primary's — shipped records
// address pages of the primary's size.
func standbyReplica(d *db.DB, pageSize int, online bool) (*repl.Channel, *repl.Standby, *repl.Shipper) {
	ch := repl.NewChannel(repl.ChannelFaults{}) // clean link: protocol cost only
	sb := repl.NewStandby(ch, d.Disk().ReadMeta(), repl.StandbyOpts{
		DBOpts: db.Options{Stats: &trace.Stats{}, PoolSize: recoveryPoolSize,
			PageSize: pageSize, OnlineRestart: online},
		Epoch: 1, ApplyWorkers: 2,
	})
	sb.Start()
	sh := repl.NewShipper(d.Log(), ch, repl.ShipperOpts{
		Epoch: 1, Stats: d.Stats(),
		MetaFn: func() []byte { return d.Disk().ReadMeta() },
	})
	sh.Start()
	return ch, sb, sh
}

// runStandbyCell measures commit throughput under one replication posture:
// workers run single-update transactions against a costed log device while
// (for async/sync) every hardened record streams to a live standby.
func runStandbyCell(cfgName string, workers, txnsTotal int, forceDelay time.Duration) (Cell, error) {
	stats := &trace.Stats{}
	d := db.Open(db.Options{Stats: stats, LogForceDelay: forceDelay})
	tbl, err := d.CreateTable("bench")
	if err != nil {
		return Cell{}, err
	}
	for lo := 0; lo < standbyKeys; lo += 256 {
		err := d.RunTxn(func(tx *txn.Tx) error {
			for i := lo; i < lo+256 && i < standbyKeys; i++ {
				if err := tbl.Insert(tx, workload.KeyFor(i), []byte("prefill-value")); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Cell{}, fmt.Errorf("prefill: %w", err)
		}
	}
	var ch *repl.Channel
	var sb *repl.Standby
	var sh *repl.Shipper
	if cfgName != "solo" {
		ch, sb, sh = standbyReplica(d, 0, false)
		if cfgName == "sync" {
			d.SetCommitGate(sh.Gate(10 * time.Second))
		}
	}

	perWorker := txnsTotal / workers
	before := stats.Snap()
	durations := make([][]time.Duration, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			durations[w] = make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				key := workload.KeyFor(rng.Intn(standbyKeys))
				t0 := time.Now()
				err := d.RunTxnWith(db.RunTxnOpts{
					Seed:        int64(w*1000 + i + 1),
					BaseBackoff: 100 * time.Microsecond,
					MaxBackoff:  2 * time.Millisecond,
				}, func(tx *txn.Tx) error {
					tb, err := d.TableFor(tx, "bench")
					if err != nil {
						return err
					}
					return tb.Update(tx, key, []byte("standby-bench-value"))
				})
				if err != nil {
					errCh <- fmt.Errorf("standby/%s w=%d: %w", cfgName, workers, err)
					return
				}
				durations[w] = append(durations[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return Cell{}, err
	default:
	}

	var lagP50, lagP99 float64
	var shipped, applied uint64
	if cfgName != "solo" {
		// Even async cells must converge: the cell also certifies that the
		// standby keeps up with this load, not just that the primary is fast.
		if err := sh.WaitAcked(d.Log().StableLSN(), 30*time.Second); err != nil {
			return Cell{}, fmt.Errorf("standby/%s w=%d: catch-up: %w", cfgName, workers, err)
		}
		if lags := sb.LagSamples(); len(lags) > 0 {
			sort.Float64s(lags)
			lagP50 = lags[len(lags)/2]
			lagP99 = lags[len(lags)*99/100]
		}
		shipped = stats.SegmentsShipped.Load()
		applied = sb.DB().Stats().SegmentsApplied.Load()
		sh.Stop()
		ch.Close()
		sb.Wait()
	}
	diff := trace.Diff(before, stats.Snap())

	var all []time.Duration
	for _, ds := range durations {
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))]) / float64(time.Microsecond)
	}
	txns := len(all)
	cell := Cell{
		Workload: "standby-commit", Config: cfgName, Workers: workers,
		Txns: txns, Ops: txns,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		TxnsPerSec: float64(txns) / elapsed.Seconds(),
		OpsPerSec:  float64(txns) / elapsed.Seconds(),
		P50Micros:  pct(0.50), P99Micros: pct(0.99),
		LogForces: diff.LogForces, GroupCommits: diff.GroupCommits,
		ForceWaiters: diff.ForceWaiters,
		Deadlocks:    diff.Deadlocks, TxnRetries: diff.TxnRetries,
		LagP50Bytes: lagP50, LagP99Bytes: lagP99,
		SegmentsShipped: shipped, SegmentsApplied: applied,
	}
	if n := diff.GroupCommits + diff.LogForces; n > 0 {
		cell.GroupCommitRatio = float64(diff.GroupCommits) / float64(n)
	}
	return cell, nil
}

// runStandbyFailover prices the failover itself. One primary is built with
// a live standby replicating throughout (insert phase flushed to disk,
// update tail left log-only, a trailing in-flight loser), then crashed.
// Two recoveries of the SAME crash race: an online restart of the crash
// image (the best a single node can do), and a promotion of the standby.
// Both TTFCs are crash-to-first-committed-probe; the promoted node is then
// verified row-exact. The standby replayed and flushed continuously, so
// its promotion should land well within 2x of the online restart.
func runStandbyFailover(rows, redoWorkers int, ioDelay time.Duration) (Cell, Cell, error) {
	fail := func(err error) (Cell, Cell, error) { return Cell{}, Cell{}, err }
	d := db.Open(db.Options{Stats: &trace.Stats{}, PageSize: 512,
		PoolSize: recoveryPoolSize, PageIODelay: ioDelay})
	tbl, err := d.CreateTable("bench")
	if err != nil {
		return fail(err)
	}
	ch, sb, sh := standbyReplica(d, 512, true)
	defer ch.Close()
	d.SetCommitGate(sh.Gate(30 * time.Second))

	key := func(i int) string { return fmt.Sprintf("r%05d", i) }
	model := map[string]string{}
	for lo := 0; lo < rows; lo += recoveryBatch {
		hi := lo + recoveryBatch
		if hi > rows {
			hi = rows
		}
		err := d.RunTxn(func(tx *txn.Tx) error {
			for i := lo; i < hi; i++ {
				if err := tbl.Insert(tx, []byte(key(i)), []byte("insert-phase-value")); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fail(fmt.Errorf("failover insert: %w", err))
		}
	}
	if err := d.Pool().FlushAll(); err != nil {
		return fail(err)
	}
	d.Log().ForceAll()
	for lo := 0; lo < rows; lo += recoveryBatch {
		hi := lo + recoveryBatch
		if hi > rows {
			hi = rows
		}
		err := d.RunTxn(func(tx *txn.Tx) error {
			for i := lo; i < hi; i++ {
				v := fmt.Sprintf("update-phase-%05d-%05d", i, lo)
				if err := tbl.Update(tx, []byte(key(i)), []byte(v)); err != nil {
					return err
				}
				model[key(i)] = v
			}
			return nil
		})
		if err != nil {
			return fail(fmt.Errorf("failover update: %w", err))
		}
	}
	loser := d.MustBegin()
	for i := 0; i < 4; i++ {
		if err := tbl.Insert(loser, []byte(fmt.Sprintf("zloser%02d", i)), []byte("never-committed")); err != nil {
			return fail(fmt.Errorf("failover loser: %w", err))
		}
	}
	d.Log().ForceAll()
	if err := sh.WaitAcked(d.Log().StableLSN(), 30*time.Second); err != nil {
		return fail(fmt.Errorf("failover catch-up: %w", err))
	}

	// Baseline: online restart of the crash image, probe = delete of a
	// committed row (see runOnlineRecoveryCell for why not an insert).
	bf := d.Fork()
	bf.SetRedoWorkers(redoWorkers)
	bf.SetOnlineRestart(true)
	t0 := time.Now()
	if _, err := bf.Restart(); err != nil {
		return fail(fmt.Errorf("failover baseline restart: %w", err))
	}
	btbl, err := bf.Table("bench")
	if err != nil {
		return fail(err)
	}
	if err := bf.RunTxn(func(tx *txn.Tx) error {
		return btbl.Delete(tx, []byte(key(0)))
	}); err != nil {
		return fail(fmt.Errorf("failover baseline probe: %w", err))
	}
	onlineTTFC := time.Since(t0)
	if _, err := bf.AwaitRecovered(); err != nil {
		return fail(fmt.Errorf("failover baseline await: %w", err))
	}

	// Failover: crash the primary, promote the standby, probe.
	t1 := time.Now()
	d.Crash()
	promoted, _, err := sb.Promote()
	if err != nil {
		return fail(fmt.Errorf("failover promote: %w", err))
	}
	ptbl, err := promoted.Table("bench")
	if err != nil {
		return fail(err)
	}
	if err := promoted.RunTxn(func(tx *txn.Tx) error {
		return ptbl.Delete(tx, []byte(key(1)))
	}); err != nil {
		return fail(fmt.Errorf("failover probe: %w", err))
	}
	failoverTTFC := time.Since(t1)
	if _, err := promoted.AwaitRecovered(); err != nil {
		return fail(fmt.Errorf("failover await: %w", err))
	}
	sh.Stop()

	// The promoted node must hold exactly the committed model (minus the
	// probe row): a fast failover that lost rows is not a result.
	delete(model, key(1))
	got := map[string]string{}
	tx, err := promoted.Begin()
	if err != nil {
		return fail(err)
	}
	err = ptbl.Scan(tx, nil, nil, func(r db.Row) (bool, error) {
		got[string(r.Key)] = string(r.Value)
		return true, nil
	})
	if cerr := tx.Commit(); err == nil {
		err = cerr
	}
	if err != nil {
		return fail(fmt.Errorf("failover scan: %w", err))
	}
	if len(got) != len(model) {
		return fail(fmt.Errorf("failover: promoted has %d rows, want %d", len(got), len(model)))
	}
	for k, v := range model {
		if got[k] != v {
			return fail(fmt.Errorf("failover: row %q = %q, want %q", k, got[k], v))
		}
	}
	if err := promoted.VerifyConsistency(); err != nil {
		return fail(fmt.Errorf("failover consistency: %v", err))
	}

	ms := func(dur time.Duration) float64 { return float64(dur) / float64(time.Millisecond) }
	base := Cell{
		Workload: "standby-failover", Config: "online-baseline", Workers: redoWorkers,
		ElapsedMS: ms(onlineTTFC), TimeToFirstCommitMS: ms(onlineTTFC),
		RowsRecovered: len(got),
	}
	fo := Cell{
		Workload: "standby-failover", Config: "promote", Workers: redoWorkers,
		ElapsedMS: ms(failoverTTFC), TimeToFirstCommitMS: ms(failoverTTFC),
		RowsRecovered:   len(got),
		SegmentsApplied: promoted.Stats().SegmentsApplied.Load(),
	}
	return base, fo, nil
}

// validateStandby self-verifies a standby-family results file: the
// replication matrix must be complete with positive throughput and real
// shipping volume, and the failover TTFC must land within 2x of the
// online-restart baseline (plus the scheduler-noise floor).
func validateStandby(path string, res *Result) error {
	seen := map[string]*Cell{}
	for i := range res.Cells {
		c := &res.Cells[i]
		tag := fmt.Sprintf("%s: cell %s/%s/%dw", path, c.Workload, c.Config, c.Workers)
		if c.Workload == "" || c.Config == "" || c.Workers <= 0 {
			return fmt.Errorf("%s: cell %d incomplete: %+v", path, i, *c)
		}
		switch c.Workload {
		case "standby-commit":
			if c.TxnsPerSec <= 0 || c.Txns <= 0 {
				return fmt.Errorf("%s: non-positive throughput", tag)
			}
			if c.Config != "solo" && c.SegmentsShipped == 0 {
				return fmt.Errorf("%s: replicated cell shipped no segments", tag)
			}
			if c.Config != "solo" && c.SegmentsApplied == 0 {
				return fmt.Errorf("%s: replicated cell applied no segments", tag)
			}
			seen[c.Config+"/"+fmt.Sprint(c.Workers)] = c
		case "standby-failover":
			if c.TimeToFirstCommitMS <= 0 {
				return fmt.Errorf("%s: no time to first commit", tag)
			}
			if c.RowsRecovered <= 0 {
				return fmt.Errorf("%s: no rows verified", tag)
			}
			seen["failover/"+c.Config] = c
		default:
			return fmt.Errorf("%s: unknown workload", tag)
		}
	}
	for _, cfg := range standbyConfigs {
		for _, w := range workerCounts {
			if seen[cfg+"/"+fmt.Sprint(w)] == nil {
				return fmt.Errorf("%s: missing cell standby-commit/%s/%dw", path, cfg, w)
			}
		}
	}
	base := seen["failover/online-baseline"]
	fo := seen["failover/promote"]
	if base == nil || fo == nil {
		return fmt.Errorf("%s: missing failover cells", path)
	}
	if fo.TimeToFirstCommitMS > 2*base.TimeToFirstCommitMS+ttfcNoiseFloorMS {
		return fmt.Errorf("%s: failover TTFC %.1fms exceeds 2x online-restart TTFC %.1fms + %.0fms noise floor — the standby did not start warm",
			path, fo.TimeToFirstCommitMS, base.TimeToFirstCommitMS, ttfcNoiseFloorMS)
	}
	if res.Summary.StandbySyncCost16 <= 0 || res.Summary.StandbyAsyncCost16 <= 0 {
		return fmt.Errorf("%s: summary missing replication cost ratios", path)
	}
	if res.Summary.StandbyFailoverTTFCMS <= 0 || res.Summary.StandbyTTFCOverOnline <= 0 {
		return fmt.Errorf("%s: summary missing failover TTFC", path)
	}
	return nil
}

// mvccConfigs are the two read protocols the mvcc family compares over the
// same workload: "slock" reads through ordinary transactions (S record
// locks, a forced commit record), "mvcc" through RunReadOnly (snapshot
// visibility, no locks, no commit).
var mvccConfigs = []string{"slock", "mvcc"}

// mvccKeys is the prefilled key space; zipfian reads and writes over it
// keep a hot set contended enough that version chains actually form.
const mvccKeys = 2048

// runMVCCCell measures one read protocol at one worker count: N reader
// workers drive zipfian multi-get transactions while one background writer
// commits single-row updates on the same zipfian hot set throughout. The
// cell fails — it does not merely score low — if a "mvcc" reader made a
// single lock-manager call, took no snapshots, or the writer starved.
func runMVCCCell(cfgName string, workers, txnsTotal, opsPerTxn int, forceDelay time.Duration) (Cell, error) {
	stats := &trace.Stats{}
	d := db.Open(db.Options{Stats: stats, LogForceDelay: forceDelay})
	tbl, err := d.CreateTable("bench")
	if err != nil {
		return Cell{}, err
	}
	for lo := 0; lo < mvccKeys; lo += 256 {
		err := d.RunTxn(func(tx *txn.Tx) error {
			for i := lo; i < lo+256 && i < mvccKeys; i++ {
				if err := tbl.Insert(tx, workload.KeyFor(i), []byte("prefill-value")); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Cell{}, fmt.Errorf("prefill: %w", err)
		}
	}

	// The counter baseline is snapped before the writer starts, so the
	// cell's version-push accounting includes the handshake commit — a
	// short cell must still prove MVCC was engaged.
	before := stats.Snap()
	stop := make(chan struct{})
	writerDone := make(chan int, 1)
	writerErrCh := make(chan error, 1)
	writerLive := make(chan struct{})
	go func() {
		spec, err := workload.SpecFor(workload.MixHotKey, mvccKeys, 7777)
		if err != nil {
			writerErrCh <- err
			writerDone <- 0
			return
		}
		g := workload.New(spec)
		n := 0
		for {
			select {
			case <-stop:
				writerDone <- n
				return
			default:
			}
			op := g.Next()
			err := d.RunTxnWith(db.RunTxnOpts{
				Seed:        int64(n + 1),
				BaseBackoff: 100 * time.Microsecond,
				MaxBackoff:  2 * time.Millisecond,
			}, func(tx *txn.Tx) error {
				tb, err := d.TableFor(tx, "bench")
				if err != nil {
					return err
				}
				return tb.Update(tx, op.Key, []byte("hot-update-value"))
			})
			if err != nil {
				writerErrCh <- fmt.Errorf("mvcc/%s w=%d: background writer: %w", cfgName, workers, err)
				writerDone <- n
				return
			}
			n++
			if n == 1 {
				close(writerLive)
			}
		}
	}()

	// Gate the clock on the writer's first commit: the readers must be
	// measured against live hot-key write pressure, and on a small box a
	// tight reader loop can out-schedule a writer that never got started.
	select {
	case <-writerLive:
	case err := <-writerErrCh:
		close(stop)
		<-writerDone
		return Cell{}, err
	case <-time.After(30 * time.Second):
		close(stop)
		<-writerDone
		return Cell{}, fmt.Errorf("mvcc/%s w=%d: background writer failed to commit within 30s", cfgName, workers)
	}

	// Key streams are generated before the clock starts: fmt/zipf work is
	// harness cost, not read-path cost, and it would dilute the measured
	// difference between the two protocols.
	perWorker := txnsTotal / workers
	keyStream := make([][][]byte, workers)
	for w := 0; w < workers; w++ {
		g := workload.New(workload.Spec{Keys: mvccKeys, Dist: workload.Zipf, ReadFrac: 1, Seed: int64(w + 1)})
		ks := make([][]byte, perWorker*opsPerTxn)
		for i := range ks {
			ks[i] = g.Next().Key
		}
		keyStream[w] = ks
	}
	durations := make([][]time.Duration, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			durations[w] = make([]time.Duration, 0, perWorker)
			var keys [][]byte
			body := func(tx *txn.Tx) error {
				tb, err := d.TableFor(tx, "bench")
				if err != nil {
					return err
				}
				for _, k := range keys {
					if _, err := tb.Get(tx, k); err != nil && !errors.Is(err, db.ErrNotFound) {
						return err
					}
				}
				return nil
			}
			for i := 0; i < perWorker; i++ {
				keys = keyStream[w][i*opsPerTxn : (i+1)*opsPerTxn]
				opts := db.RunTxnOpts{
					Seed:        int64(w*1000 + i + 1),
					BaseBackoff: 100 * time.Microsecond,
					MaxBackoff:  2 * time.Millisecond,
				}
				t0 := time.Now()
				var err error
				if cfgName == "mvcc" {
					err = d.RunReadOnlyWith(opts, body)
				} else {
					err = d.RunTxnWith(opts, body)
				}
				if err != nil {
					errCh <- fmt.Errorf("mvcc/%s w=%d: %w", cfgName, workers, err)
					return
				}
				durations[w] = append(durations[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	// Discount the pre-clock handshake commit: WriterTxns counts the
	// write pressure inside the measured window.
	writerTxns := <-writerDone - 1
	select {
	case err := <-errCh:
		return Cell{}, err
	case err := <-writerErrCh:
		return Cell{}, err
	default:
	}
	diff := trace.Diff(before, stats.Snap())
	if cfgName == "mvcc" {
		if diff.ReadOnlyLockCalls != 0 {
			return Cell{}, fmt.Errorf("mvcc w=%d: snapshot readers made %d lock-manager calls (must be 0)",
				workers, diff.ReadOnlyLockCalls)
		}
		if diff.SnapshotBegins == 0 {
			return Cell{}, fmt.Errorf("mvcc w=%d: no snapshots were taken — readers fell back to the locked path", workers)
		}
	}
	if writerTxns <= 0 {
		return Cell{}, fmt.Errorf("mvcc/%s w=%d: background writer committed nothing in the measured window — the cell ran an unchallenged read path",
			cfgName, workers)
	}

	var all []time.Duration
	for _, ds := range durations {
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))]) / float64(time.Microsecond)
	}
	txns := len(all)
	cell := Cell{
		Workload: "mvcc-read", Config: cfgName, Workers: workers,
		Txns: txns, Ops: txns * opsPerTxn,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		TxnsPerSec: float64(txns) / elapsed.Seconds(),
		OpsPerSec:  float64(txns*opsPerTxn) / elapsed.Seconds(),
		P50Micros:  pct(0.50), P99Micros: pct(0.99),
		LogForces: diff.LogForces, GroupCommits: diff.GroupCommits,
		ForceWaiters: diff.ForceWaiters,
		Deadlocks:    diff.Deadlocks, TxnRetries: diff.TxnRetries,
		SnapshotReads:     diff.SnapshotReads,
		SnapshotChainHits: diff.SnapshotChainHits,
		VersionsPushed:    diff.VersionsPushed,
		ReaderLockCalls:   diff.ReadOnlyLockCalls,
		WriterTxns:        writerTxns,
		WriterTxnsPerSec:  float64(writerTxns) / elapsed.Seconds(),
	}
	if n := diff.GroupCommits + diff.LogForces; n > 0 {
		cell.GroupCommitRatio = float64(diff.GroupCommits) / float64(n)
	}
	return cell, nil
}

// validateMVCC self-verifies an mvcc-family results file: the full
// protocol × workers matrix, positive reader AND writer throughput in
// every cell, real snapshot traffic with zero reader lock calls in the
// mvcc cells, and the headline speedup present.
func validateMVCC(path string, res *Result) error {
	seen := map[string]*Cell{}
	for i := range res.Cells {
		c := &res.Cells[i]
		tag := fmt.Sprintf("%s: cell %s/%s/%dw", path, c.Workload, c.Config, c.Workers)
		if c.Workload != "mvcc-read" || c.Config == "" || c.Workers <= 0 {
			return fmt.Errorf("%s: cell %d incomplete or unknown: %+v", path, i, *c)
		}
		if c.TxnsPerSec <= 0 || c.Txns <= 0 {
			return fmt.Errorf("%s: non-positive reader throughput", tag)
		}
		if c.WriterTxns <= 0 {
			return fmt.Errorf("%s: background writer committed nothing", tag)
		}
		if c.Config == "mvcc" {
			if c.ReaderLockCalls != 0 {
				return fmt.Errorf("%s: %d reader lock calls recorded (must be 0)", tag, c.ReaderLockCalls)
			}
			if c.SnapshotReads == 0 {
				return fmt.Errorf("%s: no snapshot reads recorded", tag)
			}
			if c.VersionsPushed == 0 {
				return fmt.Errorf("%s: writer pushed no versions — MVCC was not engaged", tag)
			}
		}
		seen[c.Config+"/"+fmt.Sprint(c.Workers)] = c
	}
	for _, cfg := range mvccConfigs {
		for _, w := range workerCounts {
			if seen[cfg+"/"+fmt.Sprint(w)] == nil {
				return fmt.Errorf("%s: missing cell mvcc-read/%s/%dw", path, cfg, w)
			}
		}
	}
	if res.Summary.MVCCReadSpeedup16 <= 0 {
		return fmt.Errorf("%s: summary missing mvcc read speedup", path)
	}
	return nil
}

// indexConfigs are the two plans the index family compares for the same
// secondary-key range query: "fullscan" walks the whole primary in key
// order and filters on the extracted attribute (what the engine had to do
// before secondary indexes); "indexed" reads exactly the matching range
// off the secondary tree. Both run as ordinary locked transactions under
// the same background writer, so the comparison is plan vs plan, not
// isolation vs isolation.
var indexConfigs = []string{"fullscan", "indexed"}

// indexKeys/indexGroups shape the indexed table: indexKeys rows spread
// uniformly over indexGroups secondary-key groups, so an indexed query
// touches ~indexKeys/indexGroups rows while the full scan touches (and
// S-locks) all indexKeys of them.
const (
	indexKeys   = 4096
	indexGroups = 64
)

func indexGroupKey(g int) []byte { return []byte(fmt.Sprintf("g%03d", g%indexGroups)) }

func indexExtract(value []byte) []byte { return append([]byte(nil), value[:4]...) }

func indexValue(g, n int) []byte {
	return []byte(fmt.Sprintf("%s|v%06d", indexGroupKey(g), n))
}

func runIndexCell(cfgName string, workers, txnsTotal int, forceDelay time.Duration) (Cell, error) {
	stats := &trace.Stats{}
	d := db.Open(db.Options{Stats: stats, LogForceDelay: forceDelay})
	tbl, err := d.CreateTable("bench")
	if err != nil {
		return Cell{}, err
	}
	if err := tbl.CreateIndex("by_group", indexExtract); err != nil {
		return Cell{}, err
	}
	for lo := 0; lo < indexKeys; lo += 256 {
		err := d.RunTxn(func(tx *txn.Tx) error {
			for i := lo; i < lo+256 && i < indexKeys; i++ {
				if err := tbl.Insert(tx, workload.KeyFor(i), indexValue(i, i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Cell{}, fmt.Errorf("prefill: %w", err)
		}
	}

	// A background writer keeps index maintenance live: every update moves
	// its row to a different group, so each one is a paired secondary
	// delete+insert racing the measured scans. Same handshake as the mvcc
	// cell: the clock only starts once the writer has committed.
	before := stats.Snap()
	stop := make(chan struct{})
	writerDone := make(chan int, 1)
	writerErrCh := make(chan error, 1)
	writerLive := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(7777))
		n := 0
		for {
			select {
			case <-stop:
				writerDone <- n
				return
			default:
			}
			key := workload.KeyFor(rng.Intn(indexKeys))
			g := rng.Intn(indexGroups)
			err := d.RunTxnWith(db.RunTxnOpts{
				Seed:        int64(n + 1),
				BaseBackoff: 100 * time.Microsecond,
				MaxBackoff:  2 * time.Millisecond,
			}, func(tx *txn.Tx) error {
				tb, err := d.TableFor(tx, "bench")
				if err != nil {
					return err
				}
				return tb.Update(tx, key, indexValue(g, n))
			})
			if err != nil {
				writerErrCh <- fmt.Errorf("index/%s w=%d: background writer: %w", cfgName, workers, err)
				writerDone <- n
				return
			}
			n++
			if n == 1 {
				close(writerLive)
			}
		}
	}()
	select {
	case <-writerLive:
	case err := <-writerErrCh:
		close(stop)
		<-writerDone
		return Cell{}, err
	case <-time.After(30 * time.Second):
		close(stop)
		<-writerDone
		return Cell{}, fmt.Errorf("index/%s w=%d: background writer failed to commit within 30s", cfgName, workers)
	}

	// Group streams are pregenerated: the query parameter draw is harness
	// cost, not plan cost.
	perWorker := txnsTotal / workers
	if perWorker == 0 {
		perWorker = 1
	}
	groupStream := make([][]int, workers)
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w + 1)))
		gs := make([]int, perWorker)
		for i := range gs {
			gs[i] = rng.Intn(indexGroups)
		}
		groupStream[w] = gs
	}
	durations := make([][]time.Duration, workers)
	rows := make([]int, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			durations[w] = make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				gk := indexGroupKey(groupStream[w][i])
				matched := 0
				body := func(tx *txn.Tx) error {
					matched = 0
					tb, err := d.TableFor(tx, "bench")
					if err != nil {
						return err
					}
					if cfgName == "indexed" {
						return tb.ScanIndexRange(tx, "by_group", gk, gk, func(sk []byte, r db.Row) (bool, error) {
							if string(sk) != string(indexExtract(r.Value)) {
								return false, fmt.Errorf("row %q under index key %q, value says %q", r.Key, sk, indexExtract(r.Value))
							}
							matched++
							return true, nil
						})
					}
					return tb.Scan(tx, nil, nil, func(r db.Row) (bool, error) {
						if string(indexExtract(r.Value)) == string(gk) {
							matched++
						}
						return true, nil
					})
				}
				t0 := time.Now()
				err := d.RunTxnWith(db.RunTxnOpts{
					Seed:        int64(w*1000 + i + 1),
					BaseBackoff: 100 * time.Microsecond,
					MaxBackoff:  2 * time.Millisecond,
				}, body)
				if err != nil {
					errCh <- fmt.Errorf("index/%s w=%d: %w", cfgName, workers, err)
					return
				}
				durations[w] = append(durations[w], time.Since(t0))
				rows[w] += matched
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	writerTxns := <-writerDone - 1 // discount the pre-clock handshake commit
	select {
	case err := <-errCh:
		return Cell{}, err
	case err := <-writerErrCh:
		return Cell{}, err
	default:
	}
	diff := trace.Diff(before, stats.Snap())
	if writerTxns <= 0 {
		return Cell{}, fmt.Errorf("index/%s w=%d: background writer committed nothing in the measured window — the scans ran unchallenged",
			cfgName, workers)
	}

	var all []time.Duration
	totalRows := 0
	for w, ds := range durations {
		all = append(all, ds...)
		totalRows += rows[w]
	}
	if totalRows == 0 {
		return Cell{}, fmt.Errorf("index/%s w=%d: no rows matched any range query", cfgName, workers)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))]) / float64(time.Microsecond)
	}
	txns := len(all)
	cell := Cell{
		Workload: "index-scan", Config: cfgName, Workers: workers,
		Txns: txns, Ops: totalRows,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		TxnsPerSec: float64(txns) / elapsed.Seconds(),
		OpsPerSec:  float64(totalRows) / elapsed.Seconds(),
		P50Micros:  pct(0.50), P99Micros: pct(0.99),
		LogForces: diff.LogForces, GroupCommits: diff.GroupCommits,
		ForceWaiters: diff.ForceWaiters,
		Deadlocks:    diff.Deadlocks, TxnRetries: diff.TxnRetries,
		WriterTxns:       writerTxns,
		WriterTxnsPerSec: float64(writerTxns) / elapsed.Seconds(),
	}
	if n := diff.GroupCommits + diff.LogForces; n > 0 {
		cell.GroupCommitRatio = float64(diff.GroupCommits) / float64(n)
	}
	return cell, nil
}

// validateIndex self-verifies an index-family results file: the full
// plan × workers matrix, positive scan AND writer throughput everywhere,
// real rows matched, and the headline speedup present.
func validateIndex(path string, res *Result) error {
	seen := map[string]*Cell{}
	for i := range res.Cells {
		c := &res.Cells[i]
		tag := fmt.Sprintf("%s: cell %s/%s/%dw", path, c.Workload, c.Config, c.Workers)
		if c.Workload != "index-scan" || c.Config == "" || c.Workers <= 0 {
			return fmt.Errorf("%s: cell %d incomplete or unknown: %+v", path, i, *c)
		}
		if c.TxnsPerSec <= 0 || c.Txns <= 0 {
			return fmt.Errorf("%s: non-positive scan throughput", tag)
		}
		if c.Ops <= 0 {
			return fmt.Errorf("%s: no rows matched — the range queries measured nothing", tag)
		}
		if c.WriterTxns <= 0 {
			return fmt.Errorf("%s: background writer committed nothing", tag)
		}
		seen[c.Config+"/"+fmt.Sprint(c.Workers)] = c
	}
	for _, cfg := range indexConfigs {
		for _, w := range workerCounts {
			if seen[cfg+"/"+fmt.Sprint(w)] == nil {
				return fmt.Errorf("%s: missing cell index-scan/%s/%dw", path, cfg, w)
			}
		}
	}
	if res.Summary.IndexScanSpeedup16 <= 0 {
		return fmt.Errorf("%s: summary missing index scan speedup", path)
	}
	return nil
}

// runCell measures one (workload, config, workers) point.
func runCell(b bench, cfg config, workers, txnsTotal, opsPerTxn int, forceDelay, ioDelay time.Duration) (Cell, error) {
	stats := &trace.Stats{}
	d := db.Open(cfg.opts(stats, forceDelay, ioDelay))
	tbl, err := d.CreateTable("bench")
	if err != nil {
		return Cell{}, err
	}
	for lo := 0; lo < b.prefill; lo += 256 {
		hi := lo + 256
		if hi > b.prefill {
			hi = b.prefill
		}
		err := d.RunTxn(func(tx *txn.Tx) error {
			for i := lo; i < hi; i++ {
				if err := tbl.Insert(tx, workload.KeyFor(i), []byte("prefill-value")); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Cell{}, fmt.Errorf("prefill: %w", err)
		}
	}

	perWorker := txnsTotal / workers
	before := stats.Snap()
	durations := make([][]time.Duration, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := workload.New(b.spec(w))
			durations[w] = make([]time.Duration, 0, perWorker)
			seq := 0
			for i := 0; i < perWorker; i++ {
				ops := make([]workload.Op, opsPerTxn)
				for j := range ops {
					ops[j] = g.Next()
					if b.name == "smo-heavy" {
						// Worker-unique fresh keys: never collide, always append.
						ops[j].Key = workload.KeyFor(w<<24 | seq)
						ops[j].Value = []byte("smo-value")
						seq++
					}
					if b.name == "append-burst" {
						// Worker-private slice of the prefilled key space:
						// appends contend, row locks never do.
						ops[j].Key = workload.KeyFor(w*256 + seq%256)
						seq++
					}
					if ops[j].Value == nil {
						ops[j].Value = []byte("bench-value")
					}
				}
				t0 := time.Now()
				// Tight retry backoff: a deadlock victim re-runs quickly, so
				// measured throughput reflects engine capacity, not sleeps.
				err := d.RunTxnWith(db.RunTxnOpts{
					Seed:        int64(w*1000 + i + 1),
					BaseBackoff: 100 * time.Microsecond,
					MaxBackoff:  2 * time.Millisecond,
				}, func(tx *txn.Tx) error {
					tb, err := d.TableFor(tx, "bench")
					if err != nil {
						return err
					}
					for _, op := range ops {
						if err := b.body(tb, tx, op); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errCh <- fmt.Errorf("%s/%s w=%d: %w", b.name, cfg.name, workers, err)
					return
				}
				durations[w] = append(durations[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return Cell{}, err
	default:
	}
	diff := trace.Diff(before, stats.Snap())

	var all []time.Duration
	for _, ds := range durations {
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Microsecond)
	}
	txns := len(all)
	cell := Cell{
		Workload: b.name, Config: cfg.name, Workers: workers,
		Txns: txns, Ops: txns * opsPerTxn,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		TxnsPerSec: float64(txns) / elapsed.Seconds(),
		OpsPerSec:  float64(txns*opsPerTxn) / elapsed.Seconds(),
		P50Micros:  pct(0.50), P99Micros: pct(0.99),
		LogForces: diff.LogForces, GroupCommits: diff.GroupCommits,
		ForceWaiters: diff.ForceWaiters,
		Deadlocks:    diff.Deadlocks, TxnRetries: diff.TxnRetries,
	}
	cell.AppendReservations = diff.AppendReservations
	cell.WatermarkStalls = diff.WatermarkStalls
	if n := diff.GroupCommits + diff.LogForces; n > 0 {
		cell.GroupCommitRatio = float64(diff.GroupCommits) / float64(n)
	}
	if ioDelay > 0 { // buffer family: record the pool's behavior
		cell.PageFixes = diff.PageFixes
		cell.PageMisses = diff.PageMisses
		cell.PageWrites = diff.PageWrites
		cell.PageEvicted = diff.PageEvicted
		cell.EvictionsDirty = diff.EvictionsDirty
		cell.EvictionStalls = diff.EvictionStalls
		cell.CleanerWrites = diff.CleanerWrites
		if diff.PageFixes > 0 {
			cell.HitRate = 1 - float64(diff.PageMisses)/float64(diff.PageFixes)
		}
	}
	return cell, nil
}

// validate checks a results file's shape and, for the buffer family, the
// internal consistency of its pool counters; it is the -verify mode and
// the CI gate against missing or malformed BENCH_*.json files.
func validate(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return fmt.Errorf("%s: malformed JSON: %w", path, err)
	}
	if len(res.Cells) == 0 {
		return fmt.Errorf("%s: no benchmark cells", path)
	}
	if res.Meta.Workload == "recovery" {
		return validateRecovery(path, &res)
	}
	if res.Meta.Workload == "standby" {
		return validateStandby(path, &res)
	}
	if res.Meta.Workload == "mvcc" {
		return validateMVCC(path, &res)
	}
	if res.Meta.Workload == "index" {
		return validateIndex(path, &res)
	}
	buffer := res.Meta.Workload == "buffer"
	wantBenches, wantConfigs := benches, configs
	if buffer {
		wantBenches, wantConfigs = bufferBenches, bufferConfigs
	}
	seen := map[string]bool{}
	for i, c := range res.Cells {
		if c.Workload == "" || c.Config == "" || c.Workers <= 0 {
			return fmt.Errorf("%s: cell %d incomplete: %+v", path, i, c)
		}
		if c.TxnsPerSec <= 0 || c.OpsPerSec <= 0 || c.Txns <= 0 {
			return fmt.Errorf("%s: cell %d has non-positive throughput: %+v", path, i, c)
		}
		if buffer {
			// Self-verification: the pool counters must tell a coherent
			// story, or the throughput numbers measured something else.
			tag := fmt.Sprintf("%s: cell %s/%s/%dw", path, c.Workload, c.Config, c.Workers)
			if c.PageFixes < uint64(c.Ops) {
				return fmt.Errorf("%s: %d fixes for %d ops", tag, c.PageFixes, c.Ops)
			}
			if c.PageMisses > c.PageFixes {
				return fmt.Errorf("%s: more misses (%d) than fixes (%d)", tag, c.PageMisses, c.PageFixes)
			}
			// An eviction without a miss is possible (a fixer frees a slot,
			// then finds a racing loader already brought its page in), so
			// allow slack of one pool's worth of such races.
			if c.PageEvicted > c.PageMisses+uint64(res.Meta.PoolSize) {
				return fmt.Errorf("%s: %d evictions for %d misses", tag, c.PageEvicted, c.PageMisses)
			}
			if c.EvictionsDirty > c.PageWrites {
				return fmt.Errorf("%s: %d dirty evictions but only %d page writes", tag, c.EvictionsDirty, c.PageWrites)
			}
			if c.HitRate < 0 || c.HitRate > 1 {
				return fmt.Errorf("%s: hit rate %.3f outside [0,1]", tag, c.HitRate)
			}
			if pool := res.Meta.PoolSize; pool > 0 && c.PageMisses <= uint64(pool) {
				return fmt.Errorf("%s: only %d misses on a %d-frame pool — not capacity-constrained", tag, c.PageMisses, pool)
			}
		}
		seen[c.Workload+"/"+c.Config] = true
	}
	for _, b := range wantBenches {
		for _, cfg := range wantConfigs {
			if !seen[b.name+"/"+cfg.name] {
				return fmt.Errorf("%s: missing cells for %s/%s", path, b.name, cfg.name)
			}
		}
	}
	if buffer {
		if res.Summary.BufferReadSpeedup16 <= 0 || res.Summary.BufferReadSpeedup1 <= 0 {
			return fmt.Errorf("%s: summary missing buffer read speedups", path)
		}
		if res.Summary.CleanerDirtyEvictDrop <= 0 {
			return fmt.Errorf("%s: summary missing cleaner dirty-eviction drop", path)
		}
	} else if res.Summary.HotkeySpeedup16 <= 0 {
		return fmt.Errorf("%s: summary missing hot-key speedup", path)
	}
	return nil
}

// ttfcNoiseFloorMS absorbs scheduler jitter in the time-to-first-commit
// gate: the probe's commit includes a log force and a handful of on-demand
// page recoveries, which on a loaded CI machine can blip past a strict
// 2x-of-analysis bound even though the steady-state ratio is well under it.
const ttfcNoiseFloorMS = 25.0

// validateRecovery self-verifies a recovery-family results file: every
// scenario must carry a cell per worker count, restart redo must have done
// real work, and — the determinism invariant parallel redo rests on — the
// applied/skipped record counts and recovered row count must be identical
// across worker counts within a scenario. Online cells (config "online")
// are validated separately: the first commit must land within 2x of the
// analysis wall (plus a noise floor) — the availability contract of
// opening before redo — and at least one DPT page must have been recovered
// on demand or by the drain.
func validateRecovery(path string, res *Result) error {
	byScenario := map[string]map[int]*Cell{}
	onlineByScenario := map[string]*Cell{}
	for i := range res.Cells {
		c := &res.Cells[i]
		tag := fmt.Sprintf("%s: cell %s/%s/%dw", path, c.Workload, c.Config, c.Workers)
		if c.Workload == "" || c.Config == "" || c.Workers <= 0 {
			return fmt.Errorf("%s: cell %d incomplete: %+v", path, i, *c)
		}
		if c.Config == "online" {
			if c.TimeToFirstCommitMS <= 0 {
				return fmt.Errorf("%s: online cell has no time to first commit", tag)
			}
			if c.AnalysisMS <= 0 {
				return fmt.Errorf("%s: online cell has no analysis wall", tag)
			}
			if c.TimeToFirstCommitMS > 2*c.AnalysisMS+ttfcNoiseFloorMS {
				return fmt.Errorf("%s: first commit at %.1fms but analysis took %.1fms — online restart did not open after analysis (bound 2x + %.0fms)",
					tag, c.TimeToFirstCommitMS, c.AnalysisMS, ttfcNoiseFloorMS)
			}
			if c.PagesOnDemand+c.PagesDrained <= 0 {
				return fmt.Errorf("%s: online cell recovered no pages via hook or drain", tag)
			}
			if c.RedoApplied <= 0 || c.RowsRecovered <= 0 || c.RecordsSeen <= 0 {
				return fmt.Errorf("%s: online cell did no recovery work: %+v", tag, *c)
			}
			onlineByScenario[c.Workload] = c
			continue
		}
		if want := "parallel"; c.Workers == 1 {
			want = "serial"
			if c.Config != want {
				return fmt.Errorf("%s: 1-worker cell labeled %q", tag, c.Config)
			}
		} else if c.Config != want {
			return fmt.Errorf("%s: %d-worker cell labeled %q", tag, c.Workers, c.Config)
		}
		if c.RestartMS <= 0 || c.RedoMS <= 0 {
			return fmt.Errorf("%s: non-positive restart/redo wall time", tag)
		}
		if c.RedoApplied <= 0 {
			return fmt.Errorf("%s: restart applied no redo records — the crash had nothing to recover", tag)
		}
		if c.RowsRecovered <= 0 {
			return fmt.Errorf("%s: no rows recovered", tag)
		}
		if c.RecordsSeen <= 0 {
			return fmt.Errorf("%s: analysis saw no records", tag)
		}
		if byScenario[c.Workload] == nil {
			byScenario[c.Workload] = map[int]*Cell{}
		}
		byScenario[c.Workload][c.Workers] = c
	}
	for _, sc := range recoveryScenarios {
		cells := byScenario[sc.name]
		if cells == nil {
			return fmt.Errorf("%s: missing scenario %s", path, sc.name)
		}
		ref := cells[1]
		for _, w := range workerCounts {
			c := cells[w]
			if c == nil {
				return fmt.Errorf("%s: missing cell %s/%dw", path, sc.name, w)
			}
			if ref != nil && (c.RedoApplied != ref.RedoApplied || c.RedoSkipped != ref.RedoSkipped ||
				c.RowsRecovered != ref.RowsRecovered) {
				return fmt.Errorf("%s: %s: %d-worker redo diverged from serial (applied %d/%d, skipped %d/%d, rows %d/%d)",
					path, sc.name, w, c.RedoApplied, ref.RedoApplied, c.RedoSkipped, ref.RedoSkipped,
					c.RowsRecovered, ref.RowsRecovered)
			}
		}
		oc := onlineByScenario[sc.name]
		if oc == nil {
			return fmt.Errorf("%s: missing online cell for %s", path, sc.name)
		}
		// Online recovery replays the same history: row state must agree
		// with the offline restarts of the same crash image.
		if ref != nil && oc.RowsRecovered != ref.RowsRecovered {
			return fmt.Errorf("%s: %s: online recovered %d rows, offline %d",
				path, sc.name, oc.RowsRecovered, ref.RowsRecovered)
		}
	}
	if res.Summary.RecoveryRedoSpeedup8 <= 0 {
		return fmt.Errorf("%s: summary missing recovery redo speedup", path)
	}
	if res.Summary.OnlineTTFCMS8 <= 0 {
		return fmt.Errorf("%s: summary missing online time to first commit", path)
	}
	return nil
}

// appendContentionBudget bounds the share of contended mutex cycles the
// log append path may hold in -profile mutex mode. The reservation
// pipeline is latch-free, so the honest budget is zero; 5% absorbs
// profile-attribution noise on a loaded machine.
const appendContentionBudget = 0.05

// appendHotSymbols are the append-path frames that must stay off the
// contention profile: mutex cycles attributed to any of them mean the
// append latch is back on the hot-key flame.
var appendHotSymbols = []string{
	"wal.(*Log).Append",
	"wal.(*Log).reserveFill",
	"wal.(*Log).appendForceSerial",
}

// mutexSnapshot aggregates the process-wide mutex profile: total
// contended cycles, the cycles whose stacks touch the append path, and
// per-site totals keyed by the first in-repo frame. The runtime profile
// accumulates for the life of the process, so callers diff snapshots.
func mutexSnapshot() (total, appendCycles int64, sites map[string]int64) {
	n, _ := runtime.MutexProfile(nil)
	recs := make([]runtime.BlockProfileRecord, n+64)
	n, _ = runtime.MutexProfile(recs)
	recs = recs[:n]
	sites = map[string]int64{}
	for _, rec := range recs {
		total += rec.Cycles
		top, hot := "", false
		for _, pc := range rec.Stack() {
			fn := runtime.FuncForPC(pc)
			if fn == nil {
				continue
			}
			name := fn.Name()
			if top == "" && strings.Contains(name, "ariesim/") {
				top = name // first in-repo frame: the site that held the lock
			}
			for _, sym := range appendHotSymbols {
				if strings.Contains(name, sym) {
					hot = true
				}
			}
		}
		if top == "" {
			top = "(runtime)"
		}
		sites[top] += rec.Cycles
		if hot {
			appendCycles += rec.Cycles
		}
	}
	return total, appendCycles, sites
}

// runMutexProfile drives the append-burst workload at 16 workers with
// mutex profiling at full fraction, prints the top contended call sites,
// and fails if the log append path holds more than appendContentionBudget
// of the contended cycles. This is the CI teeth behind "the append latch
// is gone": group-commit flush coordination (Force, forceLocked, the
// flush condvar) is expected and allowed — reserving an LSN must never
// block on a lock. The current engine runs FIRST so its measurement is
// unpolluted; the pre-PR serial configuration then runs as a control, and
// the profiler must see ITS append latch — a control that shows nothing
// means the gate itself is blind, and that fails too.
func runMutexProfile(txnsPerCell int, delay time.Duration) error {
	runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(0)
	var b *bench
	for i := range benches {
		if benches[i].name == "append-burst" {
			b = &benches[i]
		}
	}
	if b == nil {
		return errors.New("append-burst bench not registered")
	}
	cell, err := runCell(*b, configs[1], 16, txnsPerCell, b.ops, delay, 0)
	if err != nil {
		return err
	}
	total, appendCycles, sites := mutexSnapshot()

	type site struct {
		name   string
		cycles int64
	}
	ranked := make([]site, 0, len(sites))
	for name, cyc := range sites {
		ranked = append(ranked, site{name, cyc})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].cycles > ranked[j].cycles })
	pct := func(c int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(c) / float64(total)
	}
	fmt.Printf("mutex contention profile: append-burst @16 workers, %d txns, %.0f txn/s, %d reservations, %d watermark stalls\n",
		cell.Txns, cell.TxnsPerSec, cell.AppendReservations, cell.WatermarkStalls)
	if len(ranked) == 0 {
		fmt.Println("  (no contended mutex cycles recorded)")
	}
	for i, s := range ranked {
		if i >= 10 {
			break
		}
		fmt.Printf("  %6.2f%%  %s\n", pct(s.cycles), s.name)
	}
	fmt.Printf("append-path share of contended cycles: %.2f%%\n", pct(appendCycles))
	if total > 0 && float64(appendCycles)/float64(total) > appendContentionBudget {
		return fmt.Errorf("append path holds %.1f%% of contended mutex cycles (budget %.0f%%) — the log latch is back on the flame",
			pct(appendCycles), 100*appendContentionBudget)
	}

	// Control: the serial baseline's append latch must be visible to the
	// profiler, or the clean result above proves nothing.
	if _, err := runCell(*b, configs[0], 16, txnsPerCell, b.ops, delay, 0); err != nil {
		return fmt.Errorf("control run: %w", err)
	}
	_, appendAfter, _ := mutexSnapshot()
	if appendAfter <= appendCycles {
		return errors.New("control run: profiler recorded no append-path contention under the serial baseline — the gate is blind")
	}
	fmt.Printf("control: serial baseline added %d append-path contention cycles (profiler sees the latch)\n",
		appendAfter-appendCycles)
	return nil
}

func serialOrZero(c *Cell) float64 {
	if c == nil {
		return 0
	}
	return c.RestartMS
}

func main() {
	family := flag.String("workload", "concurrency", "workload family: concurrency, buffer, recovery, standby, mvcc, or index")
	out := flag.String("out", "", "results file (default BENCH_<family>.json)")
	txnsPerCell := flag.Int("txns", 800, "transactions per benchmark cell")
	opsPerTxn := flag.Int("ops", 4, "operations per transaction")
	delay := flag.Duration("delay", 200*time.Microsecond, "simulated log force latency")
	ioDelay := flag.Duration("iodelay", 200*time.Microsecond, "simulated page I/O latency (buffer family)")
	smoke := flag.Bool("smoke", false, "reduced matrix for CI (fewer txns per cell)")
	minSpeedup := flag.Float64("minspeedup", 0, "fail unless the family's headline speedup >= this")
	minCleanerDrop := flag.Float64("mincleanerdrop", 0, "fail unless the cleaner's dirty-eviction drop >= this (buffer family)")
	minBaseline := flag.Float64("minbaseline", 0.9, "mvcc family: fail unless the 16-worker snapshot-read throughput is >= this fraction of the committed baseline file (0 disables; skipped in -smoke)")
	verify := flag.String("verify", "", "validate an existing results file and exit")
	profileMode := flag.String("profile", "", "contention profile mode: 'mutex' runs append-burst at 16 workers and fails if the log append path shows mutex contention")
	flag.Parse()

	if *verify != "" {
		if err := validate(*verify); err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid\n", *verify)
		return
	}

	if *profileMode != "" {
		if *profileMode != "mutex" {
			fmt.Fprintf(os.Stderr, "unknown profile mode %q\n", *profileMode)
			os.Exit(1)
		}
		if *smoke {
			*txnsPerCell = 160
		}
		if err := runMutexProfile(*txnsPerCell, *delay); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			os.Exit(1)
		}
		return
	}

	buffer, recoveryFam, standbyFam, mvccFam, indexFam := false, false, false, false, false
	switch *family {
	case "concurrency":
		*ioDelay = 0 // the lock/commit bench keeps the page device free
	case "buffer":
		buffer = true
	case "recovery":
		recoveryFam = true
	case "standby":
		standbyFam = true
	case "mvcc":
		mvccFam = true
	case "index":
		indexFam = true
	default:
		fmt.Fprintf(os.Stderr, "unknown workload family %q\n", *family)
		os.Exit(1)
	}
	if *out == "" {
		switch {
		case buffer:
			*out = "BENCH_buffer.json"
		case recoveryFam:
			*out = "BENCH_recovery.json"
		case standbyFam:
			*out = "BENCH_standby.json"
		case mvccFam:
			*out = "BENCH_mvcc.json"
		case indexFam:
			*out = "BENCH_index.json"
		default:
			*out = "BENCH_concurrency.json"
		}
	}
	if *smoke {
		*txnsPerCell = 160
	}
	activeBenches, activeConfigs := benches, configs
	if buffer {
		activeBenches, activeConfigs = bufferBenches, bufferConfigs
	}
	if recoveryFam || standbyFam || mvccFam || indexFam {
		activeBenches = nil // these families drive their own loops
	}

	// The mvcc regression gate compares against the COMMITTED baseline, so
	// its cells must be read before this run overwrites the file.
	var baselineRead16 float64
	if mvccFam && !*smoke && *minBaseline > 0 {
		if raw, err := os.ReadFile(*out); err == nil {
			var prev Result
			if json.Unmarshal(raw, &prev) == nil {
				for _, c := range prev.Cells {
					if c.Workload == "mvcc-read" && c.Config == "mvcc" && c.Workers == 16 {
						baselineRead16 = c.TxnsPerSec
					}
				}
			}
		}
	}

	var res Result
	if buffer {
		res.Meta.Workload = "buffer"
		res.Meta.IODelayUS = int(*ioDelay / time.Microsecond)
		res.Meta.PoolSize = bufferPoolSize
	}
	if recoveryFam {
		res.Meta.Workload = "recovery"
		res.Meta.IODelayUS = int(*ioDelay / time.Microsecond)
		res.Meta.PoolSize = recoveryPoolSize
	}
	if standbyFam {
		res.Meta.Workload = "standby"
		res.Meta.IODelayUS = int(*ioDelay / time.Microsecond)
	}
	if mvccFam {
		res.Meta.Workload = "mvcc"
	}
	if indexFam {
		res.Meta.Workload = "index"
	}
	res.Meta.ForceDelayUS = int(*delay / time.Microsecond)
	res.Meta.TxnsPerCell = *txnsPerCell
	res.Meta.OpsPerTxn = *opsPerTxn
	res.Meta.Smoke = *smoke
	res.Meta.Generated = time.Now().UTC().Format(time.RFC3339)

	if recoveryFam {
		fmt.Printf("%-18s %-8s %3s  %9s %9s %9s %9s %8s %8s %10s\n",
			"workload", "cfg", "w", "restart", "analysis", "redo", "undo", "applied", "prefetch", "redo/s")
		for _, sc := range recoveryScenarios {
			if *smoke {
				sc.rows /= 4
			}
			base, model, err := buildRecoveryBase(sc, *ioDelay)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			for _, workers := range workerCounts {
				cell, err := runRecoveryCell(sc, base, model, workers)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				res.Cells = append(res.Cells, cell)
				fmt.Printf("%-18s %-8s %3d  %8.1fms %8.1fms %8.1fms %8.1fms %8d %8d %10.0f\n",
					cell.Workload, cell.Config, cell.Workers, cell.RestartMS,
					cell.AnalysisMS, cell.RedoMS, cell.UndoMS,
					cell.RedoApplied, cell.PagesPrefetched, cell.RedoPerSec)
			}
			cell, err := runOnlineRecoveryCell(sc, base, model, onlineWorkers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			res.Cells = append(res.Cells, cell)
			fmt.Printf("%-18s %-8s %3d  %8.1fms %8.1fms %8.1fms %8.1fms %8d %8d %10.0f  first commit %.1fms (%d on-demand, %d drained)\n",
				cell.Workload, cell.Config, cell.Workers, cell.RestartMS,
				cell.AnalysisMS, cell.RedoMS, cell.UndoMS,
				cell.RedoApplied, cell.PagesPrefetched, cell.RedoPerSec,
				cell.TimeToFirstCommitMS, cell.PagesOnDemand, cell.PagesDrained)
		}
	} else if standbyFam {
		fmt.Printf("%-15s %-8s %3s  %10s %9s %9s %8s %8s %10s %10s\n",
			"workload", "cfg", "w", "txn/s", "p50(us)", "p99(us)", "shipped", "applied", "lag-p50", "lag-p99")
		for _, cfg := range standbyConfigs {
			for _, workers := range workerCounts {
				cell, err := runStandbyCell(cfg, workers, *txnsPerCell, *delay)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				res.Cells = append(res.Cells, cell)
				fmt.Printf("%-15s %-8s %3d  %10.0f %9.0f %9.0f %8d %8d %10.0f %10.0f\n",
					cell.Workload, cell.Config, cell.Workers, cell.TxnsPerSec,
					cell.P50Micros, cell.P99Micros, cell.SegmentsShipped,
					cell.SegmentsApplied, cell.LagP50Bytes, cell.LagP99Bytes)
			}
		}
		rows := 1536
		if *smoke {
			rows = 384
		}
		base, fo, err := runStandbyFailover(rows, onlineWorkers, *ioDelay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		res.Cells = append(res.Cells, base, fo)
		fmt.Printf("%-15s %-16s %3d  first commit %8.1fms (%d rows verified)\n",
			base.Workload, base.Config, base.Workers, base.TimeToFirstCommitMS, base.RowsRecovered)
		fmt.Printf("%-15s %-16s %3d  first commit %8.1fms (%d rows verified)\n",
			fo.Workload, fo.Config, fo.Workers, fo.TimeToFirstCommitMS, fo.RowsRecovered)
	} else if mvccFam {
		fmt.Printf("%-10s %-6s %3s  %10s %10s %9s %9s %10s %9s %8s %9s\n",
			"workload", "cfg", "w", "txn/s", "ops/s", "p50(us)", "p99(us)", "snapreads", "chainhit", "lockcall", "writer/s")
		// Snapshot read transactions are an order of magnitude shorter than
		// the write transactions the other families measure; scale the cell
		// up so it runs long enough that the background writer gets real
		// scheduler time even on a single-CPU machine.
		mvccTxns := *txnsPerCell * 8
		for _, cfg := range mvccConfigs {
			for _, workers := range workerCounts {
				cell, err := runMVCCCell(cfg, workers, mvccTxns, *opsPerTxn, *delay)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				res.Cells = append(res.Cells, cell)
				fmt.Printf("%-10s %-6s %3d  %10.0f %10.0f %9.0f %9.0f %10d %9d %8d %9.0f\n",
					cell.Workload, cell.Config, cell.Workers, cell.TxnsPerSec, cell.OpsPerSec,
					cell.P50Micros, cell.P99Micros, cell.SnapshotReads, cell.SnapshotChainHits,
					cell.ReaderLockCalls, cell.WriterTxnsPerSec)
			}
		}
	} else if indexFam {
		fmt.Printf("%-10s %-9s %3s  %10s %10s %9s %9s %7s %7s %9s\n",
			"workload", "cfg", "w", "txn/s", "rows/s", "p50(us)", "p99(us)", "dlock", "retries", "writer/s")
		for _, cfg := range indexConfigs {
			for _, workers := range workerCounts {
				cell, err := runIndexCell(cfg, workers, *txnsPerCell, *delay)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				res.Cells = append(res.Cells, cell)
				fmt.Printf("%-10s %-9s %3d  %10.0f %10.0f %9.0f %9.0f %7d %7d %9.0f\n",
					cell.Workload, cell.Config, cell.Workers, cell.TxnsPerSec, cell.OpsPerSec,
					cell.P50Micros, cell.P99Micros, cell.Deadlocks, cell.TxnRetries,
					cell.WriterTxnsPerSec)
			}
		}
	} else if buffer {
		fmt.Printf("%-12s %-11s %3s  %10s %8s %8s %8s %8s %7s\n",
			"workload", "cfg", "w", "txn/s", "hit", "misses", "evict", "dirtyev", "cleanw")
	} else {
		fmt.Printf("%-12s %-5s %3s  %10s %10s %9s %9s %7s %7s %6s\n",
			"workload", "cfg", "w", "txn/s", "ops/s", "p50(us)", "p99(us)", "forces", "grouped", "dlock")
	}
	for _, b := range activeBenches {
		for _, cfg := range activeConfigs {
			for _, workers := range workerCounts {
				ops := *opsPerTxn
				if b.ops > 0 {
					ops = b.ops
				}
				cell, err := runCell(b, cfg, workers, *txnsPerCell, ops, *delay, *ioDelay)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				res.Cells = append(res.Cells, cell)
				if buffer {
					fmt.Printf("%-12s %-11s %3d  %10.0f %7.1f%% %8d %8d %8d %7d\n",
						cell.Workload, cell.Config, cell.Workers, cell.TxnsPerSec,
						cell.HitRate*100, cell.PageMisses, cell.PageEvicted,
						cell.EvictionsDirty, cell.CleanerWrites)
				} else {
					fmt.Printf("%-12s %-5s %3d  %10.0f %10.0f %9.0f %9.0f %7d %7d %6d\n",
						cell.Workload, cell.Config, cell.Workers, cell.TxnsPerSec, cell.OpsPerSec,
						cell.P50Micros, cell.P99Micros, cell.LogForces, cell.GroupCommits, cell.Deadlocks)
				}
			}
		}
	}

	find := func(workload, cfg string, workers int) *Cell {
		for i := range res.Cells {
			c := &res.Cells[i]
			if c.Workload == workload && c.Config == cfg && c.Workers == workers {
				return c
			}
		}
		return nil
	}
	headlineSpeedup := 0.0
	if recoveryFam {
		serial := find("recover-cold-long", "serial", 1)
		par8 := find("recover-cold-long", "parallel", 8)
		if serial != nil && par8 != nil && par8.RedoMS > 0 {
			res.Summary.RecoveryRedoSpeedup8 = serial.RedoMS / par8.RedoMS
			res.Summary.RecoveryRestartSpeedup8 = serial.RestartMS / par8.RestartMS
		}
		headlineSpeedup = res.Summary.RecoveryRedoSpeedup8
		if serial != nil && par8 != nil {
			fmt.Printf("\ncold-DPT long-log restart: redo %.1fms serial -> %.1fms @8 workers (%.2fx); whole restart %.1fms -> %.1fms (%.2fx)\n",
				serial.RedoMS, par8.RedoMS, res.Summary.RecoveryRedoSpeedup8,
				serial.RestartMS, par8.RestartMS, res.Summary.RecoveryRestartSpeedup8)
		}
		if online := find("recover-cold-long", "online", onlineWorkers); online != nil {
			res.Summary.OnlineTTFCMS8 = online.TimeToFirstCommitMS
			if online.AnalysisMS > 0 {
				res.Summary.OnlineTTFCOverAnalysis = online.TimeToFirstCommitMS / online.AnalysisMS
			}
			fmt.Printf("online restart: first commit %.1fms after crash (analysis %.1fms, %.2fx) vs %.1fms full offline restart\n",
				online.TimeToFirstCommitMS, online.AnalysisMS,
				res.Summary.OnlineTTFCOverAnalysis, serialOrZero(serial))
		}
	} else if standbyFam {
		solo16 := find("standby-commit", "solo", 16)
		async16 := find("standby-commit", "async", 16)
		sync16 := find("standby-commit", "sync", 16)
		if solo16 != nil && async16 != nil && async16.TxnsPerSec > 0 {
			res.Summary.StandbyAsyncCost16 = solo16.TxnsPerSec / async16.TxnsPerSec
		}
		if solo16 != nil && sync16 != nil && sync16.TxnsPerSec > 0 {
			res.Summary.StandbySyncCost16 = solo16.TxnsPerSec / sync16.TxnsPerSec
		}
		base := find("standby-failover", "online-baseline", onlineWorkers)
		fo := find("standby-failover", "promote", onlineWorkers)
		if base != nil && fo != nil && base.TimeToFirstCommitMS > 0 {
			res.Summary.StandbyFailoverTTFCMS = fo.TimeToFirstCommitMS
			res.Summary.StandbyOnlineTTFCMS = base.TimeToFirstCommitMS
			res.Summary.StandbyTTFCOverOnline = fo.TimeToFirstCommitMS / base.TimeToFirstCommitMS
		}
		fmt.Printf("\nreplication cost @16 workers: async %.2fx, semi-sync %.2fx of solo throughput\n",
			res.Summary.StandbyAsyncCost16, res.Summary.StandbySyncCost16)
		fmt.Printf("failover: promoted standby first commit %.1fms vs %.1fms online restart (%.2fx, gate 2x + %.0fms)\n",
			res.Summary.StandbyFailoverTTFCMS, res.Summary.StandbyOnlineTTFCMS,
			res.Summary.StandbyTTFCOverOnline, ttfcNoiseFloorMS)
	} else if mvccFam {
		slock16, snap16 := find("mvcc-read", "slock", 16), find("mvcc-read", "mvcc", 16)
		if slock16 != nil && snap16 != nil && slock16.TxnsPerSec > 0 {
			res.Summary.MVCCReadSpeedup16 = snap16.TxnsPerSec / slock16.TxnsPerSec
			res.Summary.MVCCWriterTxnsPerSec16 = snap16.WriterTxnsPerSec
		}
		headlineSpeedup = res.Summary.MVCCReadSpeedup16
		fmt.Printf("\nread path @16 workers under hot-key writer: s-lock %.0f txn/s -> snapshot %.0f txn/s (%.2fx), writer held %.0f txn/s\n",
			slock16.TxnsPerSec, snap16.TxnsPerSec, res.Summary.MVCCReadSpeedup16,
			res.Summary.MVCCWriterTxnsPerSec16)
		if baselineRead16 > 0 {
			frac := snap16.TxnsPerSec / baselineRead16
			fmt.Printf("baseline: committed file had %.0f reader txn/s @16w; this run is %.2fx of it (floor %.2f)\n",
				baselineRead16, frac, *minBaseline)
			if frac < *minBaseline {
				fmt.Fprintf(os.Stderr, "snapshot-read throughput regressed to %.2fx of the committed baseline (floor %.2f)\n",
					frac, *minBaseline)
				os.Exit(1)
			}
		}
	} else if indexFam {
		full16, idx16 := find("index-scan", "fullscan", 16), find("index-scan", "indexed", 16)
		if full16 != nil && idx16 != nil && full16.TxnsPerSec > 0 {
			res.Summary.IndexScanSpeedup16 = idx16.TxnsPerSec / full16.TxnsPerSec
			res.Summary.IndexWriterTxnsPerSec16 = idx16.WriterTxnsPerSec
		}
		headlineSpeedup = res.Summary.IndexScanSpeedup16
		fmt.Printf("\nrange query @16 workers under key-moving writer: full scan %.0f txn/s -> indexed %.0f txn/s (%.2fx), writer held %.0f txn/s\n",
			full16.TxnsPerSec, idx16.TxnsPerSec, res.Summary.IndexScanSpeedup16,
			res.Summary.IndexWriterTxnsPerSec16)
	} else if buffer {
		oldRead16, newRead16 := find("buffer-read", "old", 16), find("buffer-read", "new", 16)
		oldRead1, newRead1 := find("buffer-read", "old", 1), find("buffer-read", "new", 1)
		if oldRead16 != nil && newRead16 != nil && oldRead16.TxnsPerSec > 0 {
			res.Summary.BufferReadSpeedup16 = newRead16.TxnsPerSec / oldRead16.TxnsPerSec
		}
		if oldRead1 != nil && newRead1 != nil && oldRead1.TxnsPerSec > 0 {
			res.Summary.BufferReadSpeedup1 = newRead1.TxnsPerSec / oldRead1.TxnsPerSec
		}
		var noClean, withClean uint64
		for _, workers := range workerCounts {
			if c := find("buffer-write", "new", workers); c != nil {
				noClean += c.EvictionsDirty
			}
			if c := find("buffer-write", "new-cleaner", workers); c != nil {
				withClean += c.EvictionsDirty
			}
		}
		if withClean == 0 {
			withClean = 1 // the cleaner eliminated dirty evictions outright
		}
		res.Summary.CleanerDirtyEvictDrop = float64(noClean) / float64(withClean)
		headlineSpeedup = res.Summary.BufferReadSpeedup16
		fmt.Printf("\nbuffer read @16 workers: old %.0f txn/s -> new %.0f txn/s (%.2fx); @1 worker %.2fx\n",
			find("buffer-read", "old", 16).TxnsPerSec, find("buffer-read", "new", 16).TxnsPerSec,
			res.Summary.BufferReadSpeedup16, res.Summary.BufferReadSpeedup1)
		fmt.Printf("cleaner on buffer-write: dirty foreground evictions %d -> %d (%.1fx drop)\n",
			noClean, withClean, res.Summary.CleanerDirtyEvictDrop)
	} else {
		oldHot, newHot := find("hotkey-write", "old", 16), find("hotkey-write", "new", 16)
		if oldHot != nil && newHot != nil && oldHot.TxnsPerSec > 0 {
			res.Summary.HotkeySpeedup16 = newHot.TxnsPerSec / oldHot.TxnsPerSec
			res.Summary.NewGroupCommitRatio = newHot.GroupCommitRatio
		}
		headlineSpeedup = res.Summary.HotkeySpeedup16
		fmt.Printf("\nhot-key write @16 workers: old %.0f txn/s -> new %.0f txn/s (%.2fx), group-commit ratio %.2f\n",
			oldHot.TxnsPerSec, newHot.TxnsPerSec, res.Summary.HotkeySpeedup16, res.Summary.NewGroupCommitRatio)
	}

	blob, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("results written to %s\n", *out)
	if err := validate(*out); err != nil {
		fmt.Fprintln(os.Stderr, "self-verify:", err)
		os.Exit(1)
	}
	if *minSpeedup > 0 && headlineSpeedup < *minSpeedup {
		fmt.Fprintf(os.Stderr, "headline speedup %.2fx below required %.2fx\n",
			headlineSpeedup, *minSpeedup)
		os.Exit(1)
	}
	if buffer && *minCleanerDrop > 0 && res.Summary.CleanerDirtyEvictDrop < *minCleanerDrop {
		fmt.Fprintf(os.Stderr, "cleaner dirty-eviction drop %.1fx below required %.1fx\n",
			res.Summary.CleanerDirtyEvictDrop, *minCleanerDrop)
		os.Exit(1)
	}
}
