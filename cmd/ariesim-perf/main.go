// Command ariesim-perf is the concurrency benchmark: N workers drive
// transactions through db.RunTxn against a costed log device (simulated
// force latency), comparing the pre-PR configuration (single lock-manager
// shard, no group commit) with the current one (sharded lock table, group
// commit). It writes machine-readable results to a JSON file and prints a
// human summary, anchoring the perf trajectory the roadmap tracks.
//
//	ariesim-perf                         # full matrix -> BENCH_concurrency.json
//	ariesim-perf -smoke                  # reduced matrix (CI)
//	ariesim-perf -verify FILE            # validate an existing results file
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"ariesim/internal/db"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/workload"
)

var workerCounts = []int{1, 2, 4, 8, 16}

// Cell is one benchmark measurement: a (workload, configuration, worker
// count) point.
type Cell struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Workers  int    `json:"workers"`
	Txns     int    `json:"txns"`
	Ops      int    `json:"ops"`

	ElapsedMS  float64 `json:"elapsed_ms"`
	TxnsPerSec float64 `json:"txns_per_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`

	LogForces        uint64  `json:"log_forces"`
	GroupCommits     uint64  `json:"group_commits"`
	ForceWaiters     uint64  `json:"force_waiters"`
	GroupCommitRatio float64 `json:"group_commit_ratio"`
	Deadlocks        uint64  `json:"deadlocks"`
	TxnRetries       uint64  `json:"txn_retries"`
}

// Summary is the headline comparison the acceptance gate reads.
type Summary struct {
	// HotkeySpeedup16 is new/old transactions-per-second on the hot-key
	// write workload at 16 workers.
	HotkeySpeedup16 float64 `json:"hotkey_write_speedup_16w"`
	// NewGroupCommitRatio is the hot-key 16-worker group-commit ratio under
	// the new configuration: grouped / (grouped + physical forces).
	NewGroupCommitRatio float64 `json:"new_group_commit_ratio_16w"`
}

// Result is the BENCH_concurrency.json schema.
type Result struct {
	Meta struct {
		ForceDelayUS int    `json:"force_delay_us"`
		TxnsPerCell  int    `json:"txns_per_cell"`
		OpsPerTxn    int    `json:"ops_per_txn"`
		Smoke        bool   `json:"smoke"`
		Generated    string `json:"generated"`
	} `json:"meta"`
	Cells   []Cell  `json:"cells"`
	Summary Summary `json:"summary"`
}

// config is one engine configuration under test.
type config struct {
	name string
	opts func(stats *trace.Stats, delay time.Duration) db.Options
}

var configs = []config{
	{"old", func(stats *trace.Stats, delay time.Duration) db.Options {
		// The pre-PR engine: one lock-manager shard (a global mutex) and
		// serial per-caller log flushes.
		return db.Options{Stats: stats, LogForceDelay: delay, LockShards: 1, NoGroupCommit: true}
	}},
	{"new", func(stats *trace.Stats, delay time.Duration) db.Options {
		return db.Options{Stats: stats, LogForceDelay: delay}
	}},
}

// bench describes one workload: how to prefill the table and what one
// operation does.
type bench struct {
	name    string
	keys    int
	prefill int
	// ops overrides the global ops-per-txn when nonzero (hot-key runs one
	// op per txn so commit cost, not lock thrash, is what's measured).
	ops  int
	body func(tb *db.Table, tx *txn.Tx, op workload.Op) error
	spec func(worker int) workload.Spec
}

// applyOp tolerates the races a concurrent mixed workload creates: an
// insert landing on a live key becomes an update; reads and deletes of a
// missing key are no-ops. Everything else is a real error.
func applyOp(tb *db.Table, tx *txn.Tx, op workload.Op) error {
	switch op.Kind {
	case workload.Read, workload.ScanShort:
		if _, err := tb.Get(tx, op.Key); err != nil && !errors.Is(err, db.ErrNotFound) {
			return err
		}
	case workload.Insert:
		if err := tb.Insert(tx, op.Key, op.Value); err != nil {
			if !errors.Is(err, db.ErrDuplicate) {
				return err
			}
			return tb.Update(tx, op.Key, op.Value)
		}
	case workload.Delete:
		if err := tb.Delete(tx, op.Key); err != nil && !errors.Is(err, db.ErrNotFound) {
			return err
		}
	}
	return nil
}

var benches = []bench{
	{
		name: "read-heavy", keys: 4096, prefill: 4096,
		body: applyOp,
		spec: func(w int) workload.Spec {
			return workload.Spec{Keys: 4096, ReadFrac: 0.9, InsertFrac: 0.1, Seed: int64(w + 1)}
		},
	},
	{
		name: "write-heavy", keys: 4096, prefill: 2048,
		body: applyOp,
		spec: func(w int) workload.Spec {
			return workload.Spec{Keys: 4096, ReadFrac: 0.2, InsertFrac: 0.5, DeleteFrac: 0.3, Seed: int64(w + 1)}
		},
	},
	{
		name: "hotkey-write", keys: 2048, prefill: 2048, ops: 1,
		// Updates on a zipfian hot set: the contention + commit-force
		// workload group commit and lock sharding exist for.
		body: func(tb *db.Table, tx *txn.Tx, op workload.Op) error {
			return tb.Update(tx, op.Key, []byte("hot-update-value"))
		},
		spec: func(w int) workload.Spec {
			return workload.Spec{Keys: 2048, Dist: workload.Zipf, InsertFrac: 1, Seed: int64(w + 1)}
		},
	},
	{
		name: "smo-heavy", keys: 1 << 20, prefill: 0,
		// Sequential fresh-key inserts keep splitting the right edge of the
		// tree (nested-top-action SMOs dominate).
		body: func(tb *db.Table, tx *txn.Tx, op workload.Op) error {
			return tb.Insert(tx, op.Key, op.Value)
		},
		spec: func(w int) workload.Spec {
			// Distinct sequential ranges per worker via the seed; keys are
			// made worker-unique in the run loop instead.
			return workload.Spec{Keys: 1 << 20, Dist: workload.Sequential, InsertFrac: 1, Seed: int64(w + 1)}
		},
	},
}

// runCell measures one (workload, config, workers) point.
func runCell(b bench, cfg config, workers, txnsTotal, opsPerTxn int, delay time.Duration) (Cell, error) {
	stats := &trace.Stats{}
	d := db.Open(cfg.opts(stats, delay))
	tbl, err := d.CreateTable("bench")
	if err != nil {
		return Cell{}, err
	}
	for lo := 0; lo < b.prefill; lo += 256 {
		hi := lo + 256
		if hi > b.prefill {
			hi = b.prefill
		}
		err := d.RunTxn(func(tx *txn.Tx) error {
			for i := lo; i < hi; i++ {
				if err := tbl.Insert(tx, workload.KeyFor(i), []byte("prefill-value")); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Cell{}, fmt.Errorf("prefill: %w", err)
		}
	}

	perWorker := txnsTotal / workers
	before := stats.Snap()
	durations := make([][]time.Duration, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := workload.New(b.spec(w))
			durations[w] = make([]time.Duration, 0, perWorker)
			seq := 0
			for i := 0; i < perWorker; i++ {
				ops := make([]workload.Op, opsPerTxn)
				for j := range ops {
					ops[j] = g.Next()
					if b.name == "smo-heavy" {
						// Worker-unique fresh keys: never collide, always append.
						ops[j].Key = workload.KeyFor(w<<24 | seq)
						ops[j].Value = []byte("smo-value")
						seq++
					}
					if ops[j].Value == nil {
						ops[j].Value = []byte("bench-value")
					}
				}
				t0 := time.Now()
				// Tight retry backoff: a deadlock victim re-runs quickly, so
				// measured throughput reflects engine capacity, not sleeps.
				err := d.RunTxnWith(db.RunTxnOpts{
					Seed:        int64(w*1000 + i + 1),
					BaseBackoff: 100 * time.Microsecond,
					MaxBackoff:  2 * time.Millisecond,
				}, func(tx *txn.Tx) error {
					tb, err := d.TableFor(tx, "bench")
					if err != nil {
						return err
					}
					for _, op := range ops {
						if err := b.body(tb, tx, op); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errCh <- fmt.Errorf("%s/%s w=%d: %w", b.name, cfg.name, workers, err)
					return
				}
				durations[w] = append(durations[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return Cell{}, err
	default:
	}
	diff := trace.Diff(before, stats.Snap())

	var all []time.Duration
	for _, ds := range durations {
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Microsecond)
	}
	txns := len(all)
	cell := Cell{
		Workload: b.name, Config: cfg.name, Workers: workers,
		Txns: txns, Ops: txns * opsPerTxn,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		TxnsPerSec: float64(txns) / elapsed.Seconds(),
		OpsPerSec:  float64(txns*opsPerTxn) / elapsed.Seconds(),
		P50Micros:  pct(0.50), P99Micros: pct(0.99),
		LogForces: diff.LogForces, GroupCommits: diff.GroupCommits,
		ForceWaiters: diff.ForceWaiters,
		Deadlocks:    diff.Deadlocks, TxnRetries: diff.TxnRetries,
	}
	if n := diff.GroupCommits + diff.LogForces; n > 0 {
		cell.GroupCommitRatio = float64(diff.GroupCommits) / float64(n)
	}
	return cell, nil
}

// validate checks a results file's shape; it is the -verify mode and the
// CI gate against a missing or malformed BENCH_concurrency.json.
func validate(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return fmt.Errorf("%s: malformed JSON: %w", path, err)
	}
	if len(res.Cells) == 0 {
		return fmt.Errorf("%s: no benchmark cells", path)
	}
	seen := map[string]bool{}
	for i, c := range res.Cells {
		if c.Workload == "" || c.Config == "" || c.Workers <= 0 {
			return fmt.Errorf("%s: cell %d incomplete: %+v", path, i, c)
		}
		if c.TxnsPerSec <= 0 || c.OpsPerSec <= 0 || c.Txns <= 0 {
			return fmt.Errorf("%s: cell %d has non-positive throughput: %+v", path, i, c)
		}
		seen[c.Workload+"/"+c.Config] = true
	}
	for _, b := range benches {
		for _, cfg := range configs {
			if !seen[b.name+"/"+cfg.name] {
				return fmt.Errorf("%s: missing cells for %s/%s", path, b.name, cfg.name)
			}
		}
	}
	if res.Summary.HotkeySpeedup16 <= 0 {
		return fmt.Errorf("%s: summary missing hot-key speedup", path)
	}
	return nil
}

func main() {
	out := flag.String("out", "BENCH_concurrency.json", "results file")
	txnsPerCell := flag.Int("txns", 800, "transactions per benchmark cell")
	opsPerTxn := flag.Int("ops", 4, "operations per transaction")
	delay := flag.Duration("delay", 200*time.Microsecond, "simulated log force latency")
	smoke := flag.Bool("smoke", false, "reduced matrix for CI (fewer txns per cell)")
	minSpeedup := flag.Float64("minspeedup", 0, "fail unless hot-key 16-worker speedup >= this")
	verify := flag.String("verify", "", "validate an existing results file and exit")
	flag.Parse()

	if *verify != "" {
		if err := validate(*verify); err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid\n", *verify)
		return
	}

	if *smoke {
		*txnsPerCell = 160
	}

	var res Result
	res.Meta.ForceDelayUS = int(*delay / time.Microsecond)
	res.Meta.TxnsPerCell = *txnsPerCell
	res.Meta.OpsPerTxn = *opsPerTxn
	res.Meta.Smoke = *smoke
	res.Meta.Generated = time.Now().UTC().Format(time.RFC3339)

	fmt.Printf("%-12s %-5s %3s  %10s %10s %9s %9s %7s %7s %6s\n",
		"workload", "cfg", "w", "txn/s", "ops/s", "p50(us)", "p99(us)", "forces", "grouped", "dlock")
	for _, b := range benches {
		for _, cfg := range configs {
			for _, workers := range workerCounts {
				ops := *opsPerTxn
				if b.ops > 0 {
					ops = b.ops
				}
				cell, err := runCell(b, cfg, workers, *txnsPerCell, ops, *delay)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				res.Cells = append(res.Cells, cell)
				fmt.Printf("%-12s %-5s %3d  %10.0f %10.0f %9.0f %9.0f %7d %7d %6d\n",
					cell.Workload, cell.Config, cell.Workers, cell.TxnsPerSec, cell.OpsPerSec,
					cell.P50Micros, cell.P99Micros, cell.LogForces, cell.GroupCommits, cell.Deadlocks)
			}
		}
	}

	find := func(workload, cfg string, workers int) *Cell {
		for i := range res.Cells {
			c := &res.Cells[i]
			if c.Workload == workload && c.Config == cfg && c.Workers == workers {
				return c
			}
		}
		return nil
	}
	oldHot, newHot := find("hotkey-write", "old", 16), find("hotkey-write", "new", 16)
	if oldHot != nil && newHot != nil && oldHot.TxnsPerSec > 0 {
		res.Summary.HotkeySpeedup16 = newHot.TxnsPerSec / oldHot.TxnsPerSec
		res.Summary.NewGroupCommitRatio = newHot.GroupCommitRatio
	}

	blob, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}

	fmt.Printf("\nhot-key write @16 workers: old %.0f txn/s -> new %.0f txn/s (%.2fx), group-commit ratio %.2f\n",
		oldHot.TxnsPerSec, newHot.TxnsPerSec, res.Summary.HotkeySpeedup16, res.Summary.NewGroupCommitRatio)
	fmt.Printf("results written to %s\n", *out)
	if err := validate(*out); err != nil {
		fmt.Fprintln(os.Stderr, "self-verify:", err)
		os.Exit(1)
	}
	if *minSpeedup > 0 && res.Summary.HotkeySpeedup16 < *minSpeedup {
		fmt.Fprintf(os.Stderr, "hot-key speedup %.2fx below required %.2fx\n",
			res.Summary.HotkeySpeedup16, *minSpeedup)
		os.Exit(1)
	}
}
