package main

import (
	"go/parser"
	"go/token"
	"testing"
)

func parseSrc(t *testing.T, name, src string) parsedFile {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return parsedFile{path: name, fset: fset, file: f}
}

// TestReadOnlyPathFlagsIndexScanLockCall is the gate's negative test: a
// snapshotScanIndex that reaches a locked fetch (here via a helper, to
// prove the walk is transitive) must be flagged.
func TestReadOnlyPathFlagsIndexScanLockCall(t *testing.T) {
	src := `package db

func (t *Table) snapshotScanIndex(sec *secondary) error {
	return t.walkEntries(sec)
}

func (t *Table) walkEntries(sec *secondary) error {
	_, _, err := sec.ix.Fetch(nil, nil, 0) // locked fetch on the snapshot path
	return err
}
`
	if n := lintReadOnlyPath([]parsedFile{parseSrc(t, "bad.go", src)}); n == 0 {
		t.Fatal("locked Fetch reachable from snapshotScanIndex was not flagged")
	}
}

// TestReadOnlyPathAllowsLatchOnlyIndexScan is the matching positive case:
// the sanctioned NoLock fetches and a re-dispatch through snapshotScan
// must pass clean, and the locked arm of the ScanIndexRange dispatcher
// must not false-positive the gate.
func TestReadOnlyPathAllowsLatchOnlyIndexScan(t *testing.T) {
	src := `package db

func (t *Table) snapshotScanIndex(sec *secondary) error {
	return t.snapshotScan(nil, nil, nil)
}

func (t *Table) snapshotScan(s, from, to any) error {
	_, _, err := t.primary.FetchNoLock(nil, 0)
	return err
}

func (t *Table) ScanIndexRange(name string) error {
	if t == nil { // the snapshot arm re-enters via snapshotScanIndex (a root)
		return t.snapshotScanIndex(nil)
	}
	_, err := t.fetchRow(nil, nil) // locked arm: legitimate for ordinary txns
	return err
}
`
	if n := lintReadOnlyPath([]parsedFile{parseSrc(t, "good.go", src)}); n != 0 {
		t.Fatalf("latch-only index scan flagged %d finding(s); want 0", n)
	}
}
