// Command ariesim-lint is the in-repo stand-in for staticcheck: a small
// std-lib-only linter so `make staticcheck` can block the CI gate even on
// machines where staticcheck itself is not installed. It checks:
//
//   - gofmt cleanliness (the file must equal its go/format rendering)
//   - comparisons of a value against the literals true/false
//   - self-assignment (x = x)
//   - time.Now().Sub(t), which should be time.Since(t)
//   - empty else branches (else {})
//
// Usage mirrors the go tool: `ariesim-lint ./...` walks the tree rooted at
// the current directory; bare directory arguments lint just that package
// directory. Any finding is printed as file:line: message and the exit
// status is 1.
package main

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var files []string
	for _, arg := range args {
		root, recursive := arg, false
		if strings.HasSuffix(arg, "/...") {
			root, recursive = strings.TrimSuffix(arg, "/..."), true
			if root == "." || root == "" {
				root = "."
			}
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if !recursive && path != root {
					return fs.SkipDir
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
					return fs.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ariesim-lint: %s: %v\n", arg, err)
			os.Exit(2)
		}
	}

	findings := 0
	for _, path := range files {
		findings += lintFile(path)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ariesim-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func lintFile(path string) int {
	src, err := os.ReadFile(path)
	if err != nil {
		report(token.Position{Filename: path}, "unreadable: %v", err)
		return 1
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		report(token.Position{Filename: path}, "parse error: %v", err)
		return 1
	}
	n := 0
	if formatted, err := format.Source(src); err == nil && string(formatted) != string(src) {
		report(token.Position{Filename: path, Line: 1}, "file is not gofmt-formatted")
		n++
	}
	ast.Inspect(f, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				for _, side := range []ast.Expr{x.X, x.Y} {
					if id, ok := side.(*ast.Ident); ok && (id.Name == "true" || id.Name == "false") {
						report(fset.Position(x.Pos()), "comparison with literal %s; use the value (or its negation) directly", id.Name)
						n++
					}
				}
			}
		case *ast.AssignStmt:
			if x.Tok == token.ASSIGN && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if sameIdentChain(x.Lhs[i], x.Rhs[i]) {
						report(fset.Position(x.Pos()), "self-assignment")
						n++
					}
				}
			}
		case *ast.CallExpr:
			// time.Now().Sub(t) -> time.Since(t)
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sub" {
				if inner, ok := sel.X.(*ast.CallExpr); ok {
					if isel, ok := inner.Fun.(*ast.SelectorExpr); ok && isel.Sel.Name == "Now" {
						if pkg, ok := isel.X.(*ast.Ident); ok && pkg.Name == "time" {
							report(fset.Position(x.Pos()), "time.Now().Sub(t); use time.Since(t)")
							n++
						}
					}
				}
			}
		case *ast.IfStmt:
			if blk, ok := x.Else.(*ast.BlockStmt); ok && len(blk.List) == 0 {
				report(fset.Position(blk.Pos()), "empty else branch")
				n++
			}
		}
		return true
	})
	return n
}

// sameIdentChain reports whether two expressions are the identical chain of
// plain identifiers and selectors (x, x.y, x.y.z) — the only forms where
// assignment to itself cannot have effects.
func sameIdentChain(a, b ast.Expr) bool {
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && sameIdentChain(av.X, bv.X)
	}
	return false
}

func report(pos token.Position, fmtStr string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", pos, fmt.Sprintf(fmtStr, args...))
}
