// Command ariesim-lint is the in-repo stand-in for staticcheck: a small
// std-lib-only linter so `make staticcheck` can block the CI gate even on
// machines where staticcheck itself is not installed. It checks:
//
//   - gofmt cleanliness (the file must equal its go/format rendering)
//   - comparisons of a value against the literals true/false
//   - self-assignment (x = x)
//   - time.Now().Sub(t), which should be time.Since(t)
//   - empty else branches (else {})
//   - lock-manager calls reachable from the snapshot read-only path in
//     package db (the MVCC contract: readers are zero-lock, so a locked
//     fetch or lock.Manager request anywhere the snapshot path can reach
//     is a bug, not a style problem)
//
// Usage mirrors the go tool: `ariesim-lint ./...` walks the tree rooted at
// the current directory; bare directory arguments lint just that package
// directory. Any finding is printed as file:line: message and the exit
// status is 1.
package main

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var files []string
	for _, arg := range args {
		root, recursive := arg, false
		if strings.HasSuffix(arg, "/...") {
			root, recursive = strings.TrimSuffix(arg, "/..."), true
			if root == "." || root == "" {
				root = "."
			}
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if !recursive && path != root {
					return fs.SkipDir
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
					return fs.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ariesim-lint: %s: %v\n", arg, err)
			os.Exit(2)
		}
	}

	findings := 0
	var dbPkg []parsedFile
	for _, path := range files {
		n, pf := lintFile(path)
		findings += n
		if pf.file != nil && pf.file.Name.Name == "db" && !strings.HasSuffix(path, "_test.go") {
			dbPkg = append(dbPkg, pf)
		}
	}
	findings += lintReadOnlyPath(dbPkg)
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ariesim-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// parsedFile is one successfully parsed source file, kept for the
// package-level passes that need more than a single file's AST.
type parsedFile struct {
	path string
	fset *token.FileSet
	file *ast.File
}

func lintFile(path string) (int, parsedFile) {
	src, err := os.ReadFile(path)
	if err != nil {
		report(token.Position{Filename: path}, "unreadable: %v", err)
		return 1, parsedFile{}
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		report(token.Position{Filename: path}, "parse error: %v", err)
		return 1, parsedFile{}
	}
	n := 0
	if formatted, err := format.Source(src); err == nil && string(formatted) != string(src) {
		report(token.Position{Filename: path, Line: 1}, "file is not gofmt-formatted")
		n++
	}
	ast.Inspect(f, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				for _, side := range []ast.Expr{x.X, x.Y} {
					if id, ok := side.(*ast.Ident); ok && (id.Name == "true" || id.Name == "false") {
						report(fset.Position(x.Pos()), "comparison with literal %s; use the value (or its negation) directly", id.Name)
						n++
					}
				}
			}
		case *ast.AssignStmt:
			if x.Tok == token.ASSIGN && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if sameIdentChain(x.Lhs[i], x.Rhs[i]) {
						report(fset.Position(x.Pos()), "self-assignment")
						n++
					}
				}
			}
		case *ast.CallExpr:
			// time.Now().Sub(t) -> time.Since(t)
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sub" {
				if inner, ok := sel.X.(*ast.CallExpr); ok {
					if isel, ok := inner.Fun.(*ast.SelectorExpr); ok && isel.Sel.Name == "Now" {
						if pkg, ok := isel.X.(*ast.Ident); ok && pkg.Name == "time" {
							report(fset.Position(x.Pos()), "time.Now().Sub(t); use time.Since(t)")
							n++
						}
					}
				}
			}
		case *ast.IfStmt:
			if blk, ok := x.Else.(*ast.BlockStmt); ok && len(blk.List) == 0 {
				report(fset.Position(blk.Pos()), "empty else branch")
				n++
			}
		}
		return true
	})
	return n, parsedFile{path: path, fset: fset, file: f}
}

// snapshotRoots are package db's read-only snapshot entry points and
// helpers. Everything reachable from them by name must stay zero-lock.
var snapshotRoots = []string{
	"BeginReadOnly", "EndReadOnly", "RunReadOnly", "RunReadOnlyWith",
	"SnapshotBackup", "snapshotGet", "snapshotRead", "snapshotScan",
	"snapshotScanPrefix", "snapshotScanIndex", "probePage",
	"snapCursorStart", "snapCursorNext",
}

// dispatchStops are dual-path dispatchers: they branch on tx.Snapshot()
// between the locked path (legitimate for ordinary transactions) and the
// snapshot path. The walk does not descend into them — their snapshot
// branches re-enter through the snapshot* helpers, which are roots — so
// their locked arms don't false-positive the gate.
var dispatchStops = map[string]bool{
	"Get": true, "Scan": true, "ScanPrefix": true,
	"ScanIndex": true, "ScanIndexRange": true, "ScanSecondary": true,
}

// lintReadOnlyPath walks a name-based call graph of package db from the
// snapshot read-path roots and flags lock-manager traffic in any function
// the walk reaches: calls to the locked read helper fetchRow, to locked
// fetch variants (Fetch/FetchNext — the NoLock forms are the sanctioned
// ones), to Lock/Unlock with arguments (a lock.Manager name, unlike a
// mutex), or to anything through a receiver chain naming the lock
// manager. Name-based reachability over-approximates (any same-named
// method joins the walk), which is the safe direction for a gate.
func lintReadOnlyPath(pkg []parsedFile) int {
	decls := map[string][]parsedFile{}
	bodies := map[string][]*ast.FuncDecl{}
	for _, pf := range pkg {
		for _, d := range pf.file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[fd.Name.Name] = append(decls[fd.Name.Name], pf)
				bodies[fd.Name.Name] = append(bodies[fd.Name.Name], fd)
			}
		}
	}
	reached := map[string]bool{}
	queue := append([]string(nil), snapshotRoots...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if reached[name] || bodies[name] == nil || dispatchStops[name] {
			reached[name] = true
			continue
		}
		reached[name] = true
		for _, fd := range bodies[name] {
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					queue = append(queue, fun.Name)
				case *ast.SelectorExpr:
					queue = append(queue, fun.Sel.Name)
				}
				return true
			})
		}
	}
	n := 0
	for name := range reached {
		if dispatchStops[name] {
			continue
		}
		for i, fd := range bodies[name] {
			pf := decls[name][i]
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				if bad, what := lockManagerCall(call); bad {
					report(pf.fset.Position(call.Pos()),
						"%s reachable from the read-only snapshot path (via %s); snapshot readers must stay zero-lock", what, name)
					n++
				}
				return true
			})
		}
	}
	return n
}

// lockManagerCall reports whether call is lock-manager traffic: the
// locked read helper, a locked fetch variant, Lock/Unlock taking a lock
// name (mutexes take none), or any call through a `locks` receiver.
func lockManagerCall(call *ast.CallExpr) (bool, string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "fetchRow" {
			return true, "locked fetch helper fetchRow"
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if name == "fetchRow" {
			return true, "locked fetch helper fetchRow"
		}
		if name == "Fetch" || name == "FetchNext" {
			// The locked index/data variants; FetchNoLock / FetchNextNoLock
			// are the sanctioned snapshot-path forms.
			return true, "locked fetch " + name
		}
		if (name == "Lock" || name == "Unlock") && len(call.Args) > 0 {
			return true, "lock-manager " + name + " call"
		}
		if receiverChainHas(fun.X, "locks") || receiverChainHas(fun.X, "lm") {
			return true, "lock.Manager method " + name
		}
	}
	return false, ""
}

// receiverChainHas reports whether the selector chain expr (x, x.y, x.y.z)
// contains an identifier or field with the given name.
func receiverChainHas(expr ast.Expr, name string) bool {
	for {
		switch x := expr.(type) {
		case *ast.Ident:
			return x.Name == name
		case *ast.SelectorExpr:
			if x.Sel.Name == name {
				return true
			}
			expr = x.X
		case *ast.CallExpr:
			expr = x.Fun
		default:
			return false
		}
	}
}

// sameIdentChain reports whether two expressions are the identical chain of
// plain identifiers and selectors (x, x.y, x.y.z) — the only forms where
// assignment to itself cannot have effects.
func sameIdentChain(a, b ast.Expr) bool {
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && sameIdentChain(av.X, bv.X)
	}
	return false
}

func report(pos token.Position, fmtStr string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", pos, fmt.Sprintf(fmtStr, args...))
}
