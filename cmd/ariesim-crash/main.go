// Command ariesim-crash tortures the engine with crash/restart cycles:
// each round runs a concurrent random workload, crashes at an arbitrary
// moment (in-flight transactions lose their unforced log tail), restarts,
// and verifies that (a) every transaction whose commit record survived is
// fully present, (b) no other transaction left a trace, and (c) every
// structural invariant of the tree and record heap holds.
//
// The fault flags turn the simulated hardware hostile: -faults makes the
// disk fail, tear, and bit-flip page I/O under a seeded schedule, -torn
// tears the log tail at each crash, and -bitflip plants silent on-disk
// corruption each round. The engine must absorb all of it: transient
// errors are retried, checksum-detected corruption is healed by media
// recovery, and a torn log is truncated at the first bad-CRC record.
//
// The -chaos mode runs the concurrent adversarial sweep instead: N
// goroutines drive the workload through db.RunTxn — deadlock victims,
// lock-wait timeouts, and crashes are repaired by automatic retry — while
// the harness injects faults and crashes the engine at random points under
// live traffic, verifying exact committed state after every restart.
//
// The -standby mode runs the hot-standby failover sweep: a primary ships
// WAL to a standby over a seeded lossy channel (drops, duplicates,
// reorders, corruption, stalls) while concurrent clients commit through
// the semi-sync gate; the primary is crashed under live traffic, the
// standby is promoted, the zombie primary's stragglers must bounce off
// the epoch fence, and the promoted node is verified byte-exactly against
// the acked-commit ledger — plus one promotion fork per log record
// boundary of the standby's received window.
//
//	ariesim-crash -rounds 20 -workers 4 -ops 300 -seed 1
//	ariesim-crash -rounds 10 -faults -torn -bitflip
//	ariesim-crash -sweep               # every-boundary crash-point sweep
//	ariesim-crash -chaos -workers 8 -crashes 20 -faults
//	ariesim-crash -chaos -online -workers 8 -crashes 20 -faults
//	ariesim-crash -standby -faults     # hot-standby failover sweep
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"ariesim/internal/db"
	"ariesim/internal/lock"
	"ariesim/internal/repl"
	"ariesim/internal/storage"
	"ariesim/internal/workload"
)

func main() {
	rounds := flag.Int("rounds", 10, "crash/restart cycles")
	workers := flag.Int("workers", 4, "concurrent transactions per round")
	ops := flag.Int("ops", 200, "operations per worker per round")
	seed := flag.Int64("seed", 1, "workload seed")
	pageSize := flag.Int("pagesize", 512, "page size (small pages force SMOs)")
	poolSize := flag.Int("pool", 64, "buffer pool frames (small pools force steals)")
	faults := flag.Bool("faults", false, "inject seeded disk faults (failed/torn/bit-flipped I/O)")
	torn := flag.Bool("torn", false, "tear the log tail at each crash")
	bitflip := flag.Bool("bitflip", false, "plant silent corruption on a random disk page each round")
	sweep := flag.Bool("sweep", false, "run the every-log-boundary crash-point sweep instead of torture rounds")
	chaos := flag.Bool("chaos", false, "run the concurrent crash-under-load chaos sweep instead of torture rounds")
	crashes := flag.Int("crashes", 20, "chaos mode: crash/restart points")
	online := flag.Bool("online", false, "chaos mode: recover with online restart (open after analysis; a rotating subset of points re-crashes mid-recovery)")
	redoWorkers := flag.Int("redo", 8, "chaos -online mode: parallel redo/drain workers")
	mvccReaders := flag.Int("mvcc", 0, "chaos mode: concurrent lock-free snapshot readers; every observation is verified committed-consistent against the acked-commit ledger")
	secIndex := flag.Bool("index", false, "chaos mode: maintain a secondary index through the whole run and cross-verify it against the base table at every crash boundary")
	standby := flag.Bool("standby", false, "run the hot-standby failover sweep (crash the primary under live replicated traffic, promote, verify)")
	commits := flag.Int("commits", 120, "standby mode: acked commits before the primary is crashed")
	flag.Parse()

	if *standby {
		runStandby(*seed, *workers, *commits, *faults, *online, *redoWorkers)
		return
	}
	if *sweep {
		runSweep(*seed)
		return
	}
	if *chaos {
		runChaos(*seed, *workers, *crashes, *faults, *online, *redoWorkers, *mvccReaders, *secIndex)
		return
	}

	d := db.Open(db.Options{PageSize: *pageSize, PoolSize: *poolSize})
	tbl, err := d.CreateTable("torture")
	if err != nil {
		fail("create table: %v", err)
	}

	var inj *storage.Faults
	if *faults {
		inj = storage.NewFaults(storage.FaultConfig{
			Seed:           *seed,
			ReadErrorProb:  0.03,
			WriteErrorProb: 0.03,
			TornWriteProb:  0.05,
			BitFlipProb:    0.05,
		})
		d.Disk().SetInjector(inj)
	}
	crashRNG := rand.New(rand.NewSource(*seed * 31))

	// committed mirrors exactly the state the committed transactions
	// produced, maintained under a mutex at commit points.
	committed := map[string]string{}
	var mu sync.Mutex

	totalCommits, totalCrashes := 0, 0
	for round := 0; round < *rounds; round++ {
		var wg sync.WaitGroup
		var commits int
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				gen := workload.New(workload.Spec{
					Keys: 600, InsertFrac: 0.5, DeleteFrac: 0.3, ReadFrac: 0.2,
					Seed: *seed + int64(round*1000+w),
				})
				rng := rand.New(rand.NewSource(*seed + int64(round*77+w)))
				for i := 0; i < *ops; {
					// One transaction of 1..6 operations.
					n := rng.Intn(6) + 1
					tx, err := d.Begin()
					if err != nil {
						fail("begin: %v", err)
					}
					local := map[string]*string{} // staged changes
					ok := true
					for j := 0; j < n && ok; j++ {
						op := gen.Next()
						i++
						switch op.Kind {
						case workload.Insert:
							err := tbl.Insert(tx, op.Key, op.Value)
							switch {
							case err == nil:
								v := string(op.Value)
								local[string(op.Key)] = &v
							case errors.Is(err, db.ErrDuplicate):
								// fine: key exists
							case errors.Is(err, lock.ErrDeadlock):
								ok = false
							default:
								fail("insert: %v", err)
							}
						case workload.Delete:
							err := tbl.Delete(tx, op.Key)
							switch {
							case err == nil:
								local[string(op.Key)] = nil
							case errors.Is(err, db.ErrNotFound):
							case errors.Is(err, lock.ErrDeadlock):
								ok = false
							default:
								fail("delete: %v", err)
							}
						default:
							if _, err := tbl.Get(tx, op.Key); err != nil &&
								!errors.Is(err, db.ErrNotFound) && !errors.Is(err, lock.ErrDeadlock) {
								fail("get: %v", err)
							}
						}
					}
					if !ok || rng.Intn(5) == 0 {
						if err := tx.Rollback(); err != nil {
							fail("rollback: %v", err)
						}
						continue
					}
					mu.Lock()
					if err := tx.Commit(); err != nil {
						mu.Unlock()
						fail("commit: %v", err)
					}
					for k, v := range local {
						if v == nil {
							delete(committed, k)
						} else {
							committed[k] = *v
						}
					}
					commits++
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		totalCommits += commits

		// Pre-crash verification: distinguishes concurrency bugs (visible
		// now) from recovery bugs (appearing only after restart).
		preRows := map[string]bool{}
		pre, err := d.Begin()
		if err != nil {
			fail("pre-crash begin: %v", err)
		}
		if err := tbl.Scan(pre, []byte(""), nil, func(r db.Row) (bool, error) {
			preRows[string(r.Key)] = true
			return true, nil
		}); err != nil {
			fail("pre-crash scan: %v", err)
		}
		_ = pre.Commit()
		if len(preRows) != len(committed) {
			for k := range preRows {
				if _, ok := committed[k]; !ok {
					fmt.Fprintf(os.Stderr, "PRE-CRASH EXTRA row %q\n", k)
				}
			}
			fail("round %d PRE-CRASH: %d rows vs %d committed", round, len(preRows), len(committed))
		}

		// Push every dirty page through the (possibly faulty) device so the
		// write fates actually fire and the disk has pages to corrupt; the
		// crash then drops the pool, forcing restart to reread them all.
		if *faults || *torn || *bitflip {
			if err := d.Pool().FlushAll(); err != nil {
				fail("round %d: flush: %v", round, err)
			}
		}

		// Silent corruption: flip stored bits on a random disk page without
		// updating its checksum; the post-restart sweep must heal it.
		if *bitflip {
			if ids := d.Disk().PageIDs(); len(ids) > 0 {
				victim := ids[crashRNG.Intn(len(ids))]
				d.Disk().CorruptBits(victim, crashRNG.Intn(*pageSize-1)+1, byte(crashRNG.Intn(255)+1))
			}
		}

		// Crash. Whatever was not forced (in-flight work) is gone; the
		// commit protocol forced everything in `committed`. A torn crash
		// lets a few unforced records survive with the last one torn —
		// commits are always in the forced prefix, so the model still holds.
		if *torn {
			d.Log().CrashWithTornTail(1 + crashRNG.Intn(3))
		}
		d.Crash()
		totalCrashes++
		if _, err := d.Restart(); err != nil {
			fail("round %d: restart: %v", round, err)
		}
		tbl, err = d.Table("torture")
		if err != nil {
			fail("reopen: %v", err)
		}
		if err := d.VerifyConsistency(); err != nil {
			fail("round %d: consistency: %v", round, err)
		}
		// Exact-state check against the committed model.
		rows := map[string]string{}
		tx, err := d.Begin()
		if err != nil {
			fail("post-restart begin: %v", err)
		}
		if err := tbl.Scan(tx, []byte(""), nil, func(r db.Row) (bool, error) {
			rows[string(r.Key)] = string(r.Value)
			return true, nil
		}); err != nil {
			fail("scan: %v", err)
		}
		_ = tx.Commit()
		if len(rows) != len(committed) {
			for k := range rows {
				if _, ok := committed[k]; !ok {
					fmt.Fprintf(os.Stderr, "EXTRA row %q = %q\n", k, rows[k])
				}
			}
			for k := range committed {
				if _, ok := rows[k]; !ok {
					fmt.Fprintf(os.Stderr, "MISSING row %q (want %q)\n", k, committed[k])
				}
			}
			fail("round %d: %d rows vs %d committed", round, len(rows), len(committed))
		}
		for k, v := range committed {
			if rows[k] != v {
				fail("round %d: key %q = %q, want %q", round, k, rows[k], v)
			}
		}
		fmt.Printf("round %2d: %4d commits, %5d rows verified after crash+restart\n",
			round, commits, len(rows))

		// Occasionally checkpoint so later rounds exercise bounded analysis.
		if round%3 == 2 {
			d.Checkpoint()
		}
	}
	sn := d.Stats().Snap()
	fmt.Printf("\nPASS: %d crashes survived, %d transactions committed\n", totalCrashes, totalCommits)
	fmt.Printf("engine totals: %d traversals, %d splits, %d page deletes, %d logical undos, %d page-oriented undos, %d redos\n",
		sn.Traversals, sn.PageSplits, sn.PageDeletes, sn.UndoLogical, sn.UndoPageOriented, sn.RedoApplied)
	if *faults || *torn || *bitflip {
		fmt.Printf("fault handling: %d corrupt pages detected, %d media recoveries, %d torn-tail truncations, %d I/O retries\n",
			sn.CorruptPages, sn.MediaRecoveries, sn.TornTailTruncations, sn.IORetries)
	}
	if inj != nil {
		c := inj.Counts()
		fmt.Printf("faults injected: %d read errors, %d write errors, %d torn writes, %d bit flips\n",
			c.ReadFaults, c.WriteFaults, c.TornWrites, c.BitFlips)
	}
}

// runSweep exhaustively crash-tests every log record boundary of a
// scripted workload, double-crashing each point mid-restart.
func runSweep(seed int64) {
	res, err := db.CrashSweep(db.SweepOpts{
		Seed: seed,
		Logf: func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if err != nil {
		fail("sweep: %v", err)
	}
	fmt.Printf("\nPASS: %d/%d crash points verified (%d with interrupted restarts), %d commits, %d rollbacks\n",
		res.Points, res.Records, res.DoubleRecoveries, res.Commits, res.Rollbacks)
}

// runChaos drives the concurrent crash-under-load sweep: workers hammer
// the engine through db.RunTxn while the driver injects faults and
// crashes it at random points, verifying the acked-commit model exactly
// after every restart.
func runChaos(seed int64, workers, crashes int, faults, online bool, redoWorkers, mvccReaders int, secIndex bool) {
	res, err := db.RunChaosSweep(db.ChaosOpts{
		Seed:            seed,
		Workers:         workers,
		Crashes:         crashes,
		Faults:          faults,
		OnlineRestart:   online,
		RedoWorkers:     redoWorkers,
		SnapshotReaders: mvccReaders,
		SecondaryIndex:  secIndex,
		Logf:            func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if err != nil {
		fail("chaos: %v", err)
	}
	fmt.Printf("\nPASS: %d crashes survived under live traffic, %d commits verified (%d gave up)\n",
		res.Crashes, res.Commits, res.GaveUp)
	if secIndex {
		fmt.Printf("secondary index: cross-verified against the base table at every crash boundary\n")
	}
	fmt.Printf("contention: %d deadlocks (%d victims), %d lock timeouts\n",
		res.Deadlocks, res.DeadlockVictims, res.LockTimeouts)
	fmt.Printf("retry layer: %d retries (%d deadlock, %d timeout, %d crash-wait), %d retried txns committed\n",
		res.TxnRetries, res.DeadlockRetries, res.TimeoutRetries, res.CrashWaits, res.RetrySuccesses)
	fmt.Printf("recovery: %d redos, %d undo steps across restarts\n", res.RestartRedos, res.RestartUndos)
	if online {
		fmt.Printf("online restart: %d online restarts, %d mid-recovery crashes, %d recovering retries\n",
			res.OnlineRestarts, res.MidRecoveryCrashes, res.RecoveringRetries)
		fmt.Printf("online redo: %d pages on demand at fix time, %d by background drain, %d checkpoints fenced\n",
			res.PagesOnDemand, res.PagesDrained, res.CheckpointsSkipped)
	}
	if mvccReaders > 0 {
		fmt.Printf("mvcc: %d snapshots verified committed-consistent (%d begun, %d row reads, %d too-old retries, %d reader lock calls)\n",
			res.SnapshotsVerified, res.SnapshotBegins, res.SnapshotReads, res.SnapshotTooOld, res.ReadOnlyLockCalls)
	}
	if faults {
		fmt.Printf("fault handling: %d corrupt pages healed by %d media recoveries\n",
			res.CorruptPages, res.MediaRecoveries)
		c := res.FaultsInjected
		fmt.Printf("faults injected: %d read errors, %d write errors, %d torn writes, %d bit flips\n",
			c.ReadFaults, c.WriteFaults, c.TornWrites, c.BitFlips)
	}
}

// runStandby drives the hot-standby failover sweep: live replicated
// traffic through the semi-sync gate, a primary crash, a promotion, a
// fenced zombie, and exact + every-boundary verification on the standby.
func runStandby(seed int64, workers, commits int, faults, online bool, redoWorkers int) {
	f := repl.ChannelFaults{Seed: seed}
	if faults {
		f.DropProb, f.DupProb, f.ReorderProb = 0.15, 0.08, 0.08
		f.CorruptProb, f.StallProb = 0.05, 0.02
	}
	res, err := repl.RunStandbySweep(repl.SweepOpts{
		Seed:            seed,
		Workers:         workers,
		PreCrashCommits: commits,
		Faults:          f,
		SyncGate:        true,
		OnlineRestart:   online,
		RedoWorkers:     redoWorkers,
		Logf:            func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if err != nil {
		fail("standby: %v", err)
	}
	fmt.Printf("\nPASS: failover verified — %d acked commits, zero acked loss, %d boundary forks\n",
		res.CommitsAcked, res.Boundaries)
	fmt.Printf("ambiguity: %d gate-failed commits (%d resolved present, %d resolved lost)\n",
		res.CommitsUnacked, res.ResolvedIn, res.ResolvedOut)
	fmt.Printf("shipping: %d segments shipped, %d resent, %d applied, %d rejected; %d naks, %d reseeds\n",
		res.SegmentsShipped, res.SegmentsResent, res.SegmentsApplied, res.SegmentsRejected,
		res.Naks, res.Reseeds)
	fmt.Printf("channel faults: %+v\n", res.Channel)
	fmt.Printf("failover: TTFC %v, zombie segments fenced %d, lag p50 %.0f / p99 %.0f log bytes\n",
		res.FailoverTTFC, res.ZombieRejected, res.LagP50, res.LagP99)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
	os.Exit(1)
}
