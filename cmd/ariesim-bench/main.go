// Command ariesim-bench regenerates the paper's figures and tables as
// printed reports (see DESIGN.md §3 for the experiment index):
//
//	ariesim-bench -table fig2       # Figure 2: locking summary, observed
//	ariesim-bench -table lockcounts # §1/§5: locks/op, IM vs KVL vs System R
//	ariesim-bench -table smo        # §2.1: reader progress during SMOs
//	ariesim-bench -table recovery   # §3: restart passes, page-oriented redo
//	ariesim-bench -table media      # §5: page-oriented media recovery
//	ariesim-bench -table all
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ariesim/internal/buffer"
	"ariesim/internal/core"
	"ariesim/internal/db"
	"ariesim/internal/lock"
	"ariesim/internal/recovery"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
	"ariesim/internal/workload"
)

func main() {
	table := flag.String("table", "all", "which table/figure to regenerate: fig2|lockcounts|smo|recovery|media|all")
	flag.Parse()
	lock.RegisterTraceNames()
	run := map[string]func(){
		"fig2":       fig2,
		"lockcounts": lockCounts,
		"smo":        smoConcurrency,
		"recovery":   restartReport,
		"media":      mediaRecovery,
	}
	if *table == "all" {
		for _, name := range []string{"fig2", "lockcounts", "smo", "recovery", "media"} {
			run[name]()
			fmt.Println()
		}
		return
	}
	fn, ok := run[*table]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
	fn()
}

// engine builds a core-level stack for single-op lock measurements.
type engine struct {
	stats *trace.Stats
	log   *wal.Log
	pool  *buffer.Pool
	locks *lock.Manager
	tm    *txn.Manager
	im    *core.Manager
}

func newEngine() *engine {
	e := &engine{stats: &trace.Stats{}}
	disk := storage.NewDisk(4096)
	e.log = wal.NewLog(e.stats)
	e.pool = buffer.NewPool(disk, e.log, 256, e.stats)
	e.locks = lock.NewManager(e.stats)
	e.tm = txn.NewManager(e.log, e.locks)
	e.im = core.NewManager(e.pool, e.stats)
	e.tm.SetUndoer(e.im)
	return e
}

func key(i int) storage.Key {
	return storage.Key{Val: workload.KeyFor(i), RID: storage.RID{Page: storage.PageID(1000 + i), Slot: 1}}
}

// measure runs op once in a fresh transaction on a primed index and
// returns the lock-call cells it added.
func measure(proto core.Protocol, op func(*engine, *core.Index, *txn.Tx) error) ([]trace.LockCell, error) {
	e := newEngine()
	tx := e.tm.Begin()
	ix, err := e.im.CreateIndex(tx, core.Config{ID: 1, Protocol: proto})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 20; i++ {
		if err := ix.Insert(tx, key(i*10)); err != nil {
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	mtx := e.tm.Begin()
	before := e.stats.Snap()
	if err := op(e, ix, mtx); err != nil {
		return nil, err
	}
	cells := trace.Diff(before, e.stats.Snap()).NonzeroLockCells()
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Space != cells[j].Space {
			return cells[i].Space < cells[j].Space
		}
		return cells[i].Mode < cells[j].Mode
	})
	return cells, mtx.Commit()
}

var singleOps = []struct {
	name string
	op   func(*engine, *core.Index, *txn.Tx) error
}{
	{"FETCH (found)", func(e *engine, ix *core.Index, tx *txn.Tx) error {
		_, _, err := ix.Fetch(tx, key(50).Val, core.EQ)
		return err
	}},
	{"FETCH (not found)", func(e *engine, ix *core.Index, tx *txn.Tx) error {
		_, _, err := ix.Fetch(tx, key(55).Val, core.EQ)
		return err
	}},
	{"INSERT", func(e *engine, ix *core.Index, tx *txn.Tx) error {
		return ix.Insert(tx, key(55))
	}},
	{"DELETE", func(e *engine, ix *core.Index, tx *txn.Tx) error {
		return ix.Delete(tx, key(50))
	}},
}

// fig2 regenerates the paper's Figure 2 from observed lock calls.
func fig2() {
	fmt.Println("=== Figure 2: Summary of Locking in ARIES/IM (observed lock calls) ===")
	for _, proto := range []core.Protocol{core.DataOnly, core.IndexSpecific} {
		fmt.Printf("\n--- %s locking ---\n", proto)
		for _, sop := range singleOps {
			cells, err := measure(proto, sop.op)
			if err != nil {
				fmt.Printf("%-18s ERROR %v\n", sop.name, err)
				continue
			}
			fmt.Printf("%-18s", sop.name)
			if len(cells) == 0 {
				fmt.Print(" (no index locks: the record manager's data lock covers the key)")
			}
			for _, c := range cells {
				fmt.Printf("  [%s %s %s x%d]", c.Space, c.Mode, c.Duration, c.Count)
			}
			fmt.Println()
		}
	}
	fmt.Println("\npaper Fig 2: fetch=S/commit current; insert=X/instant next (+X/commit current if index-specific);")
	fmt.Println("             delete=X/commit next (+X/instant current if index-specific)")
}

// lockCounts regenerates the §1/§5 comparison: locks per single-record op.
func lockCounts() {
	fmt.Println("=== Locks acquired per single-record operation (index locks only) ===")
	fmt.Printf("%-18s %10s %10s %10s\n", "operation", "ARIES/IM", "ARIES/KVL", "System R")
	for _, sop := range singleOps {
		fmt.Printf("%-18s", sop.name)
		for _, proto := range []core.Protocol{core.DataOnly, core.KVL, core.SystemR} {
			cells, err := measure(proto, sop.op)
			if err != nil {
				fmt.Printf(" %10s", "ERR")
				continue
			}
			var n uint64
			for _, c := range cells {
				n += c.Count
			}
			fmt.Printf(" %10d", n)
		}
		fmt.Println()
	}
	fmt.Println("\npaper claim (§1, §5): ARIES/IM acquires the minimal number of locks;")
	fmt.Println("KVL adds key-value locks; System R adds key-value AND index page locks.")
}

// smoConcurrency quantifies §2.1: readers proceed during SMOs under
// ARIES/IM; under System R they block on the splitter's page locks.
func smoConcurrency() {
	fmt.Println("=== Reader progress while a writer splits pages (500ms window) ===")
	fmt.Printf("%-12s %14s %14s %12s\n", "protocol", "reader ops", "writer ops", "splits")
	for _, proto := range []core.Protocol{core.DataOnly, core.SystemR} {
		readers, writers, splits := runSMOWindow(proto, 500*time.Millisecond)
		fmt.Printf("%-12s %14d %14d %12d\n", proto, readers, writers, splits)
	}
	fmt.Println("\npaper claim (§2.1): retrievals, inserts and deletes go on concurrently with SMOs;")
	fmt.Println("System R-style commit-duration page locks serialize readers behind uncommitted splits.")
}

func runSMOWindow(proto core.Protocol, window time.Duration) (readerOps, writerOps int64, splits uint64) {
	d := db.Open(db.Options{PageSize: 512, PoolSize: 512, Protocol: proto})
	tbl, err := d.CreateTable("t")
	if err != nil {
		panic(err)
	}
	setup := d.MustBegin()
	for i := 0; i < 200; i++ {
		if err := tbl.Insert(setup, workload.KeyFor(i*100), []byte("seed")); err != nil {
			panic(err)
		}
	}
	if err := setup.Commit(); err != nil {
		panic(err)
	}
	splitsBefore := d.Stats().PageSplits.Load()

	stop := make(chan struct{})
	var ro, wo atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			g := workload.New(workload.Spec{Keys: 20000, ReadFrac: 1, Seed: int64(r)})
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := d.MustBegin()
				_, _ = tbl.Get(tx, g.Next().Key)
				_ = tx.Commit()
				ro.Add(1)
			}
		}(r)
	}
	// One writer splitting the same pages the readers fetch from; it
	// commits only every 50 inserts, so System R's commit-duration page
	// locks (on the leaves it updates and on every page its SMOs touch)
	// linger across many reader attempts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		tx := d.MustBegin()
		for {
			select {
			case <-stop:
				_ = tx.Rollback()
				return
			default:
			}
			k := append(workload.KeyFor((i*37)%20000), byte('w'), byte('0'+i%10), byte('0'+(i/10)%10))
			if err := tbl.Insert(tx, k, []byte("split-fodder")); err != nil {
				_ = tx.Rollback()
				tx = d.MustBegin()
				continue
			}
			i++
			wo.Add(1)
			if i%50 == 0 {
				_ = tx.Commit()
				tx = d.MustBegin()
			}
		}
	}()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	return ro.Load(), wo.Load(), d.Stats().PageSplits.Load() - splitsBefore
}

// restartReport quantifies §3: restart passes are page-oriented.
func restartReport() {
	fmt.Println("=== Restart recovery on a 5000-op workload (nothing flushed) ===")
	d := db.Open(db.Options{PageSize: 1024, PoolSize: 4096})
	tbl, err := d.CreateTable("t")
	if err != nil {
		panic(err)
	}
	g := workload.New(workload.Spec{Keys: 3000, InsertFrac: 0.7, DeleteFrac: 0.3, Seed: 9})
	live := map[string]bool{}
	tx := d.MustBegin()
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind == workload.Insert && !live[string(op.Key)] {
			if err := tbl.Insert(tx, op.Key, op.Value); err != nil {
				panic(err)
			}
			live[string(op.Key)] = true
		} else if op.Kind == workload.Delete && live[string(op.Key)] {
			if err := tbl.Delete(tx, op.Key); err != nil {
				panic(err)
			}
			delete(live, string(op.Key))
		}
		if i%500 == 499 {
			if err := tx.Commit(); err != nil {
				panic(err)
			}
			tx = d.MustBegin()
		}
	}
	_ = tx.Rollback()
	records := d.Log().NumRecords()
	travBefore := d.Stats().Traversals.Load()
	d.Crash()
	start := time.Now()
	rep, err := d.Restart()
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	if err := d.VerifyConsistency(); err != nil {
		panic(err)
	}
	fmt.Printf("log records:        %d (%d KiB)\n", records, d.Log().Bytes()/1024)
	fmt.Printf("restart time:       %v\n", elapsed.Round(time.Microsecond))
	fmt.Printf("analysis records:   %d\n", rep.RecordsSeen)
	fmt.Printf("redo applied:       %d (skipped: %d)\n", rep.RedosApplied, rep.RedosSkipped)
	fmt.Printf("losers undone:      %d\n", rep.LosersUndone)
	fmt.Printf("tree traversals during redo+undo: %d (redo itself: always 0 — page-oriented)\n",
		d.Stats().Traversals.Load()-travBefore)
}

// mediaRecovery quantifies §5: a damaged page is rebuilt from the dump
// plus one pass of the log.
func mediaRecovery() {
	fmt.Println("=== Page-oriented media recovery ===")
	d := db.Open(db.Options{PageSize: 1024, PoolSize: 1024})
	tbl, err := d.CreateTable("t")
	if err != nil {
		panic(err)
	}
	tx := d.MustBegin()
	for i := 0; i < 2000; i++ {
		if err := tbl.Insert(tx, workload.KeyFor(i), []byte("media")); err != nil {
			panic(err)
		}
	}
	if err := tx.Commit(); err != nil {
		panic(err)
	}
	if err := d.Pool().FlushAll(); err != nil {
		panic(err)
	}
	img := recovery.TakeImageCopy(d.Disk(), d.Log())
	tx2 := d.MustBegin()
	for i := 2000; i < 2500; i++ {
		if err := tbl.Insert(tx2, workload.KeyFor(i), []byte("post-dump")); err != nil {
			panic(err)
		}
	}
	if err := tx2.Commit(); err != nil {
		panic(err)
	}
	if err := d.Pool().FlushAll(); err != nil {
		panic(err)
	}
	d.Pool().Crash()
	var damaged []storage.PageID
	buf := make([]byte, 1024)
	for _, pid := range d.Disk().PageIDs() {
		_ = d.Disk().Read(pid, buf)
		if storage.PageFromBytes(buf).Type() == storage.PageTypeIndex {
			damaged = append(damaged, pid)
			d.Disk().Corrupt(pid)
		}
	}
	start := time.Now()
	for _, pid := range damaged {
		if err := recovery.RecoverPage(d.Disk(), d.Log(), img, pid); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	if err := d.VerifyConsistency(); err != nil {
		panic(err)
	}
	fmt.Printf("index pages destroyed & rebuilt: %d\n", len(damaged))
	fmt.Printf("log passes per page: 1 (LSN-guarded roll-forward, no traversal)\n")
	fmt.Printf("total rebuild time:  %v (%v/page)\n",
		elapsed.Round(time.Microsecond), (elapsed / time.Duration(len(damaged))).Round(time.Microsecond))
}
