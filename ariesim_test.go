package ariesim_test

import (
	"errors"
	"fmt"
	"testing"

	"ariesim"
)

// TestPublicAPIRoundTrip exercises the façade end to end: the full
// transactional lifecycle plus a crash/restart cycle, exactly as a
// downstream user would drive it.
func TestPublicAPIRoundTrip(t *testing.T) {
	db := ariesim.Open(ariesim.Options{PageSize: 1024, PoolSize: 64})
	tbl, err := db.CreateTable("users")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.MustBegin()
	for i := 0; i < 50; i++ {
		if err := tbl.Insert(tx, []byte(fmt.Sprintf("user%03d", i)), []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	loser := db.MustBegin()
	if err := tbl.Insert(loser, []byte("zz-ghost"), []byte("boo")); err != nil {
		t.Fatal(err)
	}
	db.Log().ForceAll()
	db.Crash()
	rep, err := db.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LosersUndone != 1 {
		t.Fatalf("losers undone = %d", rep.LosersUndone)
	}
	tbl, err = db.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	r := db.MustBegin()
	if _, err := tbl.Get(r, []byte("user025")); err != nil {
		t.Fatalf("committed row lost: %v", err)
	}
	if _, err := tbl.Get(r, []byte("zz-ghost")); !errors.Is(err, ariesim.ErrNotFound) {
		t.Fatalf("uncommitted row visible: %v", err)
	}
	count := 0
	if err := tbl.Scan(r, []byte("user000"), []byte("user049"), func(ariesim.Row) (bool, error) {
		count++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("scan saw %d rows", count)
	}
	_ = r.Commit()
	if err := db.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolsSelectable checks the façade exposes every protocol.
func TestProtocolsSelectable(t *testing.T) {
	for _, p := range []ariesim.Protocol{
		ariesim.ProtocolARIESIM, ariesim.ProtocolIndexSpecific,
		ariesim.ProtocolARIESKVL, ariesim.ProtocolSystemR,
	} {
		db := ariesim.Open(ariesim.Options{PageSize: 512, Protocol: p})
		tbl, err := db.CreateTable("t")
		if err != nil {
			t.Fatal(err)
		}
		tx := db.MustBegin()
		if err := tbl.Insert(tx, []byte("a"), []byte("1")); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func ExampleOpen() {
	db := ariesim.Open(ariesim.Options{})
	tbl, _ := db.CreateTable("accounts")
	tx := db.MustBegin()
	_ = tbl.Insert(tx, []byte("alice"), []byte("100"))
	_ = tx.Commit()

	db.Crash()
	_, _ = db.Restart()
	tbl, _ = db.Table("accounts")

	r := db.MustBegin()
	balance, _ := tbl.Get(r, []byte("alice"))
	_ = r.Commit()
	fmt.Println(string(balance))
	// Output: 100
}
